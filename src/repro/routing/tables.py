"""Per-node forwarding tables and the network-wide routing view.

:class:`UnicastRouting` computes and caches the shortest-path trees of
every node lazily; :class:`RoutingTable` is one node's view (the
longest-lived object the protocol agents touch on every packet).

The split mirrors reality: a router only ever consults *its own* table
(``next_hop``), while the experiment harness uses the global view for
path and delay calculations.

Cost changes are tracked *incrementally*: the routing view registers a
cost listener on its topology, appends every effective ``set_cost`` to
a delta log, and repairs each cached table lazily — on its next query —
via :func:`repro.routing.incremental.repair_tree`, touching only the
origins whose trees the deltas actually cross.  A per-origin
``generation`` counter lets downstream memoizers (the static drivers'
walk plans, the on-SPT cache) revalidate per origin instead of
rebuilding wholesale.  Setting ``REPRO_ROUTING_FULL=1`` in the
environment is the escape hatch: every repair becomes a from-scratch
Dijkstra rebuild (still lazy, still per-origin), which the determinism
tests use to prove the two modes byte-identical.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import RoutingError
from repro.obs.profiling import PROFILER
from repro.routing.dijkstra import shortest_paths_from
from repro.routing.incremental import repair_tree
from repro.topology.model import Topology

NodeId = Hashable

#: Environment flag selecting the full-recompute escape hatch.
FULL_RECOMPUTE_ENV = "REPRO_ROUTING_FULL"

_ABSENT = object()


@dataclass
class RepairStats:
    """Counters describing how the incremental substrate has worked.

    ``origins_changed`` / ``origins_clean`` split the refreshes by
    whether the pending deltas actually moved that origin's tree — the
    scale tests assert a single link event leaves almost every origin
    clean.  ``full_rebuilds`` counts refreshes served by a from-scratch
    Dijkstra (escape hatch, overflowed delta log, or the batch-size
    heuristic); ``nodes_touched`` sums the changed node sets.
    """

    refreshes: int = 0
    origins_changed: int = 0
    origins_clean: int = 0
    full_rebuilds: int = 0
    nodes_touched: int = 0

    def reset(self) -> None:
        self.refreshes = 0
        self.origins_changed = 0
        self.origins_clean = 0
        self.full_rebuilds = 0
        self.nodes_touched = 0


class RoutingTable:
    """One node's unicast forwarding view (destination -> next hop).

    Stores the origin's shortest-path tree sparsely — the ``(distance,
    predecessor)`` maps — and derives next hops on demand by walking a
    predecessor chain once, memoizing the whole chain (every node on it
    shares the same first hop).  A table owned by a
    :class:`UnicastRouting` synchronises itself on every query: one
    integer compare against the owner's delta sequence, then a lazy
    repair when costs changed since the last read.  Holders may
    therefore keep a table reference indefinitely; it never goes
    silently stale.

    :attr:`generation` bumps only when *this origin's* routes actually
    changed, so memoizers of per-origin route facts can revalidate
    without a wholesale flush.
    """

    __slots__ = ("node", "_dist", "_pred", "_next_hops", "_owner",
                 "applied_seq", "generation")

    def __init__(
        self,
        node: NodeId,
        distances: Dict[NodeId, float],
        predecessors: Dict[NodeId, Optional[NodeId]],
        owner: Optional["UnicastRouting"] = None,
    ) -> None:
        self.node = node
        self._dist = distances
        self._pred = predecessors
        self._next_hops: Dict[NodeId, NodeId] = {}
        self._owner = owner
        #: The owner delta-log sequence this table has applied.
        self.applied_seq = 0 if owner is None else owner._seq
        #: Bumped (to the owner's global generation) whenever a repair
        #: changes this origin's routes.
        self.generation = 0 if owner is None else owner.generation

    def _sync(self) -> None:
        owner = self._owner
        if owner is not None and self.applied_seq != owner._seq:
            owner._refresh(self)

    def next_hop(self, destination: NodeId) -> NodeId:
        """The neighbor to which traffic for ``destination`` is forwarded.

        Raises :class:`RoutingError` for the node itself or unreachable
        destinations.
        """
        self._sync()
        hop = self._next_hops.get(destination)
        if hop is not None:
            return hop
        if destination == self.node:
            raise RoutingError(f"{self.node}: no next hop to self")
        pred = self._pred
        if destination not in pred:
            raise RoutingError(
                f"{self.node}: no route to {destination}"
            )
        # Walk the predecessor chain back toward this node, stopping
        # early at any already-memoized ancestor; every node visited
        # shares the ancestor's first hop.
        node = self.node
        hops = self._next_hops
        chain = []
        cursor = destination
        while True:
            chain.append(cursor)
            parent = pred[cursor]
            if parent == node:
                first = cursor
                break
            cached = hops.get(parent)
            if cached is not None:
                first = cached
                break
            if parent is None:  # pragma: no cover - connected topology
                raise RoutingError(
                    f"broken predecessor chain {node} -> {destination}"
                )
            cursor = parent
        for n in chain:
            hops[n] = first
        return first

    def distance(self, destination: NodeId) -> float:
        """Total directed cost from this node to ``destination``."""
        self._sync()
        try:
            return self._dist[destination]
        except KeyError:
            raise RoutingError(
                f"{self.node}: no route to {destination}"
            ) from None

    def predecessor(self, destination: NodeId) -> Optional[NodeId]:
        """``destination``'s parent in this origin's shortest-path tree
        (``None`` for the node itself); raises on unreachable nodes."""
        self._sync()
        try:
            return self._pred[destination]
        except KeyError:
            raise RoutingError(
                f"{self.node}: no route to {destination}"
            ) from None

    def destinations(self) -> List[NodeId]:
        """All reachable destinations (excluding the node itself), sorted."""
        self._sync()
        node = self.node
        return sorted(d for d in self._dist if d != node)

    def __repr__(self) -> str:
        return f"RoutingTable(node={self.node}, routes={len(self._dist) - 1})"


class UnicastRouting:
    """Shortest-path unicast routing for a whole topology.

    Tables are computed on demand (one Dijkstra per *origin* node) and
    cached.  Cost mutations arrive through the topology's cost-listener
    hook and are applied to each cached table lazily, as incremental
    repairs; ``invalidate()`` remains as the wholesale fallback (and is
    still required after *structural* mutations such as ``add_link``).
    All route queries in the library flow through this class so that
    HBH, REUNITE and the PIM baselines see the exact same unicast
    substrate, as the paper assumes.
    """

    def __init__(self, topology: Topology) -> None:
        topology.validate()
        self.topology = topology
        self._tables: Dict[NodeId, RoutingTable] = {}
        #: Full forward paths, memoized as immutable tuples so hot
        #: consumers (the static driver's message walks) can iterate a
        #: route without one ``next_hop`` call per hop.  Flushed
        #: wholesale (they are cross-table facts: each hop consults its
        #: own table) the first time a path is asked for after deltas.
        self._paths: Dict[Tuple[NodeId, NodeId], Tuple[NodeId, ...]] = {}
        self._paths_seq = 0
        #: Bumped on every cost delta and by :meth:`invalidate`.
        #: Consumers that memoize route facts (e.g. the static driver's
        #: walk plans) compare this to learn that *something* changed,
        #: then use :meth:`origin_generation` to keep every plan whose
        #: origins did not.  Duck-typed routing substitutes (the
        #: learned-routing views) do NOT provide it — cache holders
        #: must probe with ``getattr(routing, "generation", None)`` and
        #: skip caching when absent.
        self.generation = 0
        #: Monotone count of cost deltas observed (the delta-log
        #: sequence); each table records the sequence it has applied.
        self._seq = 0
        #: The log itself: ``(a, b, old_cost)`` per effective
        #: ``set_cost``, entry ``i`` carrying sequence ``_log_base + i``
        #: (the new cost is read off the live topology at repair time).
        self._log: List[Tuple[NodeId, NodeId, float]] = []
        self._log_base = 1
        #: Overflow guard: past this length the oldest half of the log
        #: is dropped and tables that old fall back to a full rebuild.
        self._log_cap = max(256, 4 * topology.num_links)
        #: Marker for fault players and other mutators: this substrate
        #: observes ``set_cost`` itself; callers must NOT ``invalidate``
        #: on its behalf.
        self.auto_tracking = True
        #: Escape hatch (``REPRO_ROUTING_FULL=1``): serve every refresh
        #: with a from-scratch Dijkstra instead of a repair.
        self.full_recompute = (
            os.environ.get(FULL_RECOMPUTE_ENV, "") not in ("", "0")
        )
        self.stats = RepairStats()
        # Register weakly: the topology outliving this view (tests and
        # benchmarks build many views over one fixture topology) must
        # not pin every view's table cache in memory forever.
        self_ref = weakref.ref(self)

        def _listener(a: NodeId, b: NodeId, old: float, new: float,
                      _ref=self_ref) -> None:
            routing = _ref()
            if routing is not None:
                routing._on_cost_change(a, b, old, new)

        topology.add_cost_listener(_listener)

    # ------------------------------------------------------------------
    # Delta intake & repair
    # ------------------------------------------------------------------
    def _on_cost_change(self, a: NodeId, b: NodeId,
                        old: float, new: float) -> None:
        self._seq += 1
        self.generation += 1
        log = self._log
        log.append((a, b, old))
        if len(log) > self._log_cap:
            drop = len(log) // 2
            del log[:drop]
            self._log_base += drop

    def _refresh(self, table: RoutingTable) -> None:
        """Bring ``table`` up to the current delta sequence (repair or
        rebuild), bumping its generation only on real change."""
        seq = self._seq
        applied = table.applied_seq
        with PROFILER.span("routing.repair"):
            if self.full_recompute or applied + 1 < self._log_base:
                changed = self._rebuild(table)
            else:
                # Coalesce the pending window per directed edge: the
                # oldest logged cost is what the table still assumes,
                # the live topology holds the net result.  Edges that
                # round-tripped (down then up) net out and are skipped —
                # the table never observed the intermediate state.
                start = applied + 1 - self._log_base
                pending: Dict[Tuple[NodeId, NodeId], float] = {}
                setdefault = pending.setdefault
                for a, b, old in self._log[start:]:
                    setdefault((a, b), old)
                cost = self.topology.cost
                deltas = []
                for (a, b), old in pending.items():
                    new = cost(a, b)
                    if new != old:
                        deltas.append((a, b, old, new))
                if not deltas:
                    changed = set()
                elif 3 * len(deltas) >= 2 * self.topology.num_links:
                    # Most of the graph moved; a fresh Dijkstra is
                    # cheaper than repairing edge by edge (and produces
                    # the identical canonical tree).
                    changed = self._rebuild(table)
                else:
                    changed = repair_tree(
                        self.topology, table.node,
                        table._dist, table._pred, deltas,
                    )
            table.applied_seq = seq
            stats = self.stats
            stats.refreshes += 1
            if changed:
                stats.origins_changed += 1
                stats.nodes_touched += len(changed)
                table.generation = self.generation
                table._next_hops.clear()
            else:
                stats.origins_clean += 1

    def _rebuild(self, table: RoutingTable):
        """From-scratch Dijkstra for one table, with change detection."""
        dist, pred = shortest_paths_from(self.topology, table.node)
        old_dist, old_pred = table._dist, table._pred
        changed = {
            n for n in dist.keys() | old_dist.keys()
            if dist.get(n, _ABSENT) != old_dist.get(n, _ABSENT)
            or pred.get(n, _ABSENT) != old_pred.get(n, _ABSENT)
        }
        table._dist = dist
        table._pred = pred
        self.stats.full_rebuilds += 1
        return changed

    def refresh_all(self) -> int:
        """Eagerly repair every cached table; returns how many changed.

        Queries repair lazily on their own — this exists for callers
        that want the repair cost accounted *now* (benchmarks, the
        scale tests' affected-origin assertions).
        """
        changed = 0
        seq = self._seq
        for table in self._tables.values():
            before = table.generation
            if table.applied_seq != seq:
                self._refresh(table)
            if table.generation != before:
                changed += 1
        return changed

    def export_repair_metrics(self, registry) -> None:
        """Fold :attr:`stats` into ``registry`` as ``routing.repair.*``
        counters.  Increments by the delta against the counter's
        current value, so the export is idempotent per state and safe
        to call repeatedly (sweep cells export once per run into fresh
        registries; long-lived networks may export per probe)."""
        stats = self.stats
        for name, value in (
            ("routing.repair.refreshes", stats.refreshes),
            ("routing.repair.origins_changed", stats.origins_changed),
            ("routing.repair.origins_clean", stats.origins_clean),
            ("routing.repair.full_rebuilds", stats.full_rebuilds),
            ("routing.repair.nodes_touched", stats.nodes_touched),
        ):
            counter = registry.counter(name)
            counter.inc(max(0.0, float(value) - counter.value))

    def origin_generation(self, origin: NodeId) -> Optional[int]:
        """The current generation of ``origin``'s table, or ``None``
        when no table is cached (callers must treat ``None`` as
        "assume changed": an uncached origin has no identity to pin a
        memoized fact to)."""
        table = self._tables.get(origin)
        if table is None:
            return None
        if table.applied_seq != self._seq:
            self._refresh(table)
        return table.generation

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def table(self, node: NodeId) -> RoutingTable:
        """The forwarding table of ``node`` (computed lazily)."""
        cached = self._tables.get(node)
        if cached is not None:
            if cached.applied_seq != self._seq:
                self._refresh(cached)
            return cached
        with PROFILER.span("routing.table_build"):
            return self._build_table(node)

    def _build_table(self, node: NodeId) -> RoutingTable:
        distance, predecessor = shortest_paths_from(self.topology, node)
        table = RoutingTable(node, distance, predecessor, owner=self)
        self._tables[node] = table
        return table

    def next_hop(self, node: NodeId, destination: NodeId) -> NodeId:
        """Next hop at ``node`` for traffic toward ``destination``."""
        return self.table(node).next_hop(destination)

    def path(self, origin: NodeId, destination: NodeId) -> List[NodeId]:
        """The full unicast path ``[origin, ..., destination]``.

        This is the *forward* path — with asymmetric costs it generally
        differs from ``path(destination, origin)`` reversed.  Returns a
        fresh list (callers may mutate it); use :meth:`path_tuple` on
        hot paths to share the memoized tuple instead.
        """
        return list(self.path_tuple(origin, destination))

    def path_tuple(self, origin: NodeId,
                   destination: NodeId) -> Tuple[NodeId, ...]:
        """The memoized forward path ``(origin, ..., destination)``.

        Identical hop sequence to chaining :meth:`next_hop` (that is
        how it is built), cached until the next cost delta.  The tuple
        is shared — do not mutate-by-copy unless you must.
        """
        if self._paths_seq != self._seq:
            self._paths.clear()
            self._paths_seq = self._seq
        key = (origin, destination)
        cached = self._paths.get(key)
        if cached is not None:
            return cached
        if origin == destination:
            path: List[NodeId] = [origin]
        else:
            path = [origin]
            node = origin
            guard = len(self.topology.nodes) + 1
            while node != destination:
                node = self.next_hop(node, destination)
                path.append(node)
                guard -= 1
                if guard == 0:  # pragma: no cover - tables are loop-free
                    raise RoutingError(
                        f"forwarding loop between {origin} and {destination}"
                    )
        result = tuple(path)
        self._paths[key] = result
        return result

    def distance(self, origin: NodeId, destination: NodeId) -> float:
        """Directed shortest-path cost from ``origin`` to ``destination``."""
        if origin == destination:
            return 0.0
        return self.table(origin).distance(destination)

    def invalidate(self) -> None:
        """Drop every cached table and path, advancing
        :attr:`generation`.

        Cost mutations no longer need this — the cost listener feeds
        them to the lazy repairs — but it remains the required call
        after *structural* topology changes, and the wholesale
        semantics some callers (and tests) rely on.
        """
        self._tables.clear()
        self._paths.clear()
        self.generation += 1
        # Dropped tables can never consume the log; restart it.
        self._log.clear()
        self._log_base = self._seq + 1


def shared_routing(topology: Topology) -> UnicastRouting:
    """The memoized :class:`UnicastRouting` for ``topology``.

    Keyed on topology *identity* (the instance, not its contents), so
    every consumer of one topology draw — the four paired protocols of
    a Monte-Carlo run, the convergence oracle, the explain CLI — shares
    one table cache instead of re-running identical Dijkstras.
    ``Topology.copy()`` produces a fresh instance and therefore a fresh
    routing view, which is what per-fraction/per-spread cost mutation
    needs.  Cost mutations on a live topology are tracked by the shared
    view itself (it listens on ``set_cost``), so every holder observes
    the repaired routes — costs are topology-level state.
    """
    routing = topology.__dict__.get("_shared_routing")
    if routing is None:
        routing = UnicastRouting(topology)
        topology.__dict__["_shared_routing"] = routing
    return routing
