"""Per-node forwarding tables and the network-wide routing view.

:class:`UnicastRouting` computes and caches the shortest-path trees of
every node lazily; :class:`RoutingTable` is one node's view (the
longest-lived object the protocol agents touch on every packet).

The split mirrors reality: a router only ever consults *its own* table
(``next_hop``), while the experiment harness uses the global view for
path and delay calculations.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.errors import RoutingError
from repro.obs.profiling import PROFILER
from repro.routing.dijkstra import shortest_paths_from
from repro.topology.model import Topology

NodeId = Hashable


class RoutingTable:
    """One node's unicast forwarding table (destination -> next hop)."""

    def __init__(self, node: NodeId, next_hops: Dict[NodeId, NodeId],
                 distances: Dict[NodeId, float]) -> None:
        self.node = node
        self._next_hops = next_hops
        self._distances = distances

    def next_hop(self, destination: NodeId) -> NodeId:
        """The neighbor to which traffic for ``destination`` is forwarded.

        Raises :class:`RoutingError` for the node itself or unreachable
        destinations.
        """
        if destination == self.node:
            raise RoutingError(f"{self.node}: no next hop to self")
        try:
            return self._next_hops[destination]
        except KeyError:
            raise RoutingError(
                f"{self.node}: no route to {destination}"
            ) from None

    def distance(self, destination: NodeId) -> float:
        """Total directed cost from this node to ``destination``."""
        try:
            return self._distances[destination]
        except KeyError:
            raise RoutingError(
                f"{self.node}: no route to {destination}"
            ) from None

    def destinations(self) -> List[NodeId]:
        """All reachable destinations (excluding the node itself), sorted."""
        return sorted(d for d in self._next_hops)

    def __repr__(self) -> str:
        return f"RoutingTable(node={self.node}, routes={len(self._next_hops)})"


class UnicastRouting:
    """Shortest-path unicast routing for a whole topology.

    Tables are computed on demand (one Dijkstra per *origin* node) and
    cached; ``invalidate()`` drops the cache after cost changes.  All
    route queries in the library flow through this class so that HBH,
    REUNITE and the PIM baselines see the exact same unicast substrate,
    as the paper assumes.
    """

    def __init__(self, topology: Topology) -> None:
        topology.validate()
        self.topology = topology
        self._tables: Dict[NodeId, RoutingTable] = {}
        #: Full forward paths, memoized as immutable tuples so hot
        #: consumers (the static driver's message walks) can iterate a
        #: route without one ``next_hop`` call per hop.
        self._paths: Dict[Tuple[NodeId, NodeId], Tuple[NodeId, ...]] = {}
        #: Bumped by :meth:`invalidate`.  Consumers that memoize route
        #: facts (e.g. the static driver's on-SPT cache) compare this
        #: to decide whether their caches still describe the current
        #: costs.  Duck-typed routing substitutes (the learned-routing
        #: views) do NOT provide it — cache holders must probe with
        #: ``getattr(routing, "generation", None)`` and skip caching
        #: when absent.
        self.generation = 0

    def table(self, node: NodeId) -> RoutingTable:
        """The forwarding table of ``node`` (computed lazily)."""
        cached = self._tables.get(node)
        if cached is not None:
            return cached
        with PROFILER.span("routing.table_build"):
            return self._build_table(node)

    def _build_table(self, node: NodeId) -> RoutingTable:
        distance, predecessor = shortest_paths_from(self.topology, node)
        next_hops: Dict[NodeId, NodeId] = {}
        for destination in distance:
            if destination == node:
                continue
            # Walk predecessors back until the hop adjacent to `node`.
            hop = destination
            while predecessor[hop] != node:
                hop = predecessor[hop]
                if hop is None:  # pragma: no cover - connected topology
                    raise RoutingError(
                        f"broken predecessor chain {node} -> {destination}"
                    )
            next_hops[destination] = hop
        table = RoutingTable(node, next_hops, distance)
        self._tables[node] = table
        return table

    def next_hop(self, node: NodeId, destination: NodeId) -> NodeId:
        """Next hop at ``node`` for traffic toward ``destination``."""
        return self.table(node).next_hop(destination)

    def path(self, origin: NodeId, destination: NodeId) -> List[NodeId]:
        """The full unicast path ``[origin, ..., destination]``.

        This is the *forward* path — with asymmetric costs it generally
        differs from ``path(destination, origin)`` reversed.  Returns a
        fresh list (callers may mutate it); use :meth:`path_tuple` on
        hot paths to share the memoized tuple instead.
        """
        return list(self.path_tuple(origin, destination))

    def path_tuple(self, origin: NodeId,
                   destination: NodeId) -> Tuple[NodeId, ...]:
        """The memoized forward path ``(origin, ..., destination)``.

        Identical hop sequence to chaining :meth:`next_hop` (that is
        how it is built), cached until :meth:`invalidate`.  The tuple
        is shared — do not mutate-by-copy unless you must.
        """
        key = (origin, destination)
        cached = self._paths.get(key)
        if cached is not None:
            return cached
        if origin == destination:
            path: List[NodeId] = [origin]
        else:
            path = [origin]
            node = origin
            guard = len(self.topology.nodes) + 1
            while node != destination:
                node = self.next_hop(node, destination)
                path.append(node)
                guard -= 1
                if guard == 0:  # pragma: no cover - tables are loop-free
                    raise RoutingError(
                        f"forwarding loop between {origin} and {destination}"
                    )
        result = tuple(path)
        self._paths[key] = result
        return result

    def distance(self, origin: NodeId, destination: NodeId) -> float:
        """Directed shortest-path cost from ``origin`` to ``destination``."""
        if origin == destination:
            return 0.0
        return self.table(origin).distance(destination)

    def invalidate(self) -> None:
        """Drop cached tables and paths (call after mutating link
        costs) and advance :attr:`generation` so downstream route-fact
        caches know to do the same."""
        self._tables.clear()
        self._paths.clear()
        self.generation += 1


def shared_routing(topology: Topology) -> UnicastRouting:
    """The memoized :class:`UnicastRouting` for ``topology``.

    Keyed on topology *identity* (the instance, not its contents), so
    every consumer of one topology draw — the four paired protocols of
    a Monte-Carlo run, the convergence oracle, the explain CLI — shares
    one table cache instead of re-running identical Dijkstras.
    ``Topology.copy()`` produces a fresh instance and therefore a fresh
    routing view, which is what per-fraction/per-spread cost mutation
    needs.  Cost mutations on a live topology must still go through
    ``invalidate()`` — sharing means one call invalidates every holder,
    which is the correct semantics (costs are topology-level state).
    """
    routing = topology.__dict__.get("_shared_routing")
    if routing is None:
        routing = UnicastRouting(topology)
        topology.__dict__["_shared_routing"] = routing
    return routing
