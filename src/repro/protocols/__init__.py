"""Baseline multicast protocols the paper compares HBH against.

- :mod:`repro.protocols.reunite` — REUNITE (Stoica et al., INFOCOM
  2000), the other recursive-unicast protocol, as described in paper
  Section 2;
- :mod:`repro.protocols.pim` — the NS-style centralized PIM baselines:
  PIM-SM shared trees (RP-rooted reverse SPT with source-to-RP unicast
  encapsulation) and PIM-SS source trees (reverse SPT, the structure of
  PIM-SSM).

All protocols implement the :class:`repro.protocols.base.MulticastProtocol`
driver interface, so the experiment harness treats them uniformly.
"""

from repro.protocols.base import (
    MulticastProtocol,
    PROTOCOL_REGISTRY,
    build_protocol,
    register_protocol,
)

__all__ = [
    "MulticastProtocol",
    "PROTOCOL_REGISTRY",
    "build_protocol",
    "register_protocol",
]
