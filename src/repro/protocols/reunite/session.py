"""High-level facade for an event-driven REUNITE conversation,
mirroring :class:`repro.core.protocol.HbhChannel`."""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.addressing import ReuniteChannel
from repro.core.tables import ProtocolTiming
from repro.errors import ChannelError
from repro.metrics.distribution import DataDistribution
from repro.netsim.network import Network
from repro.netsim.packet import PacketKind
from repro.protocols.reunite.agents import (
    ReuniteReceiverAgent,
    ReuniteRouterAgent,
    ReuniteSourceAgent,
)

NodeId = Hashable


def ensure_reunite_routers(network: Network,
                           timing: Optional[ProtocolTiming] = None) -> int:
    """Attach a :class:`ReuniteRouterAgent` to every multicast-capable
    router that lacks one; returns how many were added."""
    added = 0
    for node in network.nodes:
        if node.is_host or not node.multicast_capable:
            continue
        if any(isinstance(agent, ReuniteRouterAgent)
               for agent in node.agents):
            continue
        node.attach_agent(ReuniteRouterAgent(timing=timing))
        added += 1
    return added


class ReuniteSession:
    """One REUNITE conversation ``<S, P>`` on a live network."""

    def __init__(self, network: Network, source_node: NodeId,
                 port: int = 5000,
                 timing: Optional[ProtocolTiming] = None) -> None:
        self.network = network
        self.timing = timing or ProtocolTiming()
        ensure_reunite_routers(network, timing=self.timing)
        self.source_node = source_node
        self.source = ReuniteSourceAgent(port=port, timing=self.timing)
        network.attach(source_node, self.source)
        self.receivers: Dict[NodeId, ReuniteReceiverAgent] = {}
        self._former: Dict[NodeId, ReuniteReceiverAgent] = {}
        self._started = False

    @property
    def channel(self) -> ReuniteChannel:
        return self.source.channel

    def join(self, receiver_node: NodeId) -> ReuniteReceiverAgent:
        """Subscribe ``receiver_node`` to the conversation."""
        if receiver_node == self.source_node:
            raise ChannelError("the source cannot join its own conversation")
        if receiver_node in self.receivers:
            raise ChannelError(f"{receiver_node} already joined")
        agent = self._former.pop(receiver_node, None)
        if agent is None:
            agent = ReuniteReceiverAgent(self.channel, timing=self.timing)
            self.network.attach(receiver_node, agent)
        self.receivers[receiver_node] = agent
        self._ensure_started()
        agent.join()
        return agent

    def leave(self, receiver_node: NodeId) -> None:
        """Unsubscribe ``receiver_node`` (agent reused on re-join)."""
        try:
            agent = self.receivers.pop(receiver_node)
        except KeyError:
            raise ChannelError(f"{receiver_node} is not joined") from None
        agent.leave()
        self._former[receiver_node] = agent

    def _ensure_started(self) -> None:
        if not self._started:
            self.network.start()
            self._started = True

    def converge(self, periods: float = 10.0) -> None:
        """Run the simulation for ``periods`` tree periods."""
        self._ensure_started()
        simulator = self.network.simulator
        simulator.run(until=simulator.now + periods * self.timing.tree_period)

    def measure_data(self, settle_periods: float = 1.0) -> DataDistribution:
        """Send one data packet and record its distribution."""
        self.network.counters.reset()
        baseline = {node: len(agent.deliveries)
                    for node, agent in self.receivers.items()}
        self.source.send_data()
        simulator = self.network.simulator
        simulator.run(
            until=simulator.now + settle_periods * self.timing.tree_period
        )
        distribution = DataDistribution(expected=set(self.receivers))
        for (src, dst), count in self.network.counters.per_link(
                PacketKind.DATA).items():
            cost = self.network.topology.cost(src, dst)
            for _ in range(count):
                distribution.record_hop(src, dst, cost)
        for node, agent in self.receivers.items():
            if len(agent.deliveries) > baseline[node]:
                distribution.record_delivery(node, agent.deliveries[-1])
        return distribution
