"""REUNITE message-processing rules as pure functions.

Mirrors the structure of :mod:`repro.core.rules` so the static round
driver and the event-driven agents share one implementation.  Derived
from the tree-construction narrative of paper Section 2 (Figs. 2-3) and
Stoica et al.:

Join at router B:
  - B has a *fresh* MFT: a known receiver -> refresh, consume; the dst
    receiver -> refresh and *forward* (it joined upstream and its join
    must keep reaching that node); unknown -> add as receiver, consume
    ("r2 joined the channel at R3").
  - B has a *stale* MFT: forward (stale MFTs stop intercepting,
    Fig. 2(c)).
  - B has a fresh MCT entry for a *different* receiver -> B promotes
    itself to a branching node: ``MFT.dst`` = the existing MCT
    receiver, the joiner is added, the MCT is destroyed ("R3 drops the
    join(S, r2), creates a MFT<S> with r1 as dst, adds r2, removes
    <S, r1> from its MCT").
  - B's MCT contains the joiner itself -> forward (the join must reach
    the node where the receiver actually joined; R1 forwards r1's
    joins to S in Fig. 2 although it holds an <S, r1> MCT entry).

Tree at router B (target R):
  - B branching, R == dst, unmarked -> refresh dst; regenerate
    ``tree(S, rj)`` for each fresh receiver; forward the original.
  - B branching, R == dst, marked -> the MFT becomes stale; forward the
    marked tree (no regeneration).
  - B non-branching, unmarked -> install/refresh the R MCT entry,
    forward.
  - B non-branching, marked -> destroy any R MCT entries, forward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Union

from repro.core.rules import Consume, Forward
from repro.core.tables import ProtocolTiming
from repro.protocols.reunite.messages import ReuniteJoin, ReuniteTree
from repro.protocols.reunite.tables import ReuniteMct, ReuniteMft, ReuniteState

Addr = Hashable


@dataclass(frozen=True, slots=True)
class RegenerateTree:
    """Emit a downstream ``tree(S, target)`` from this branching node."""

    target: Addr
    marked: bool = False


ReuniteAction = Union[Forward, Consume, RegenerateTree]


def process_join(
    state: ReuniteState,
    message: ReuniteJoin,
    now: float,
    timing: ProtocolTiming,
) -> List[ReuniteAction]:
    """Handle a join at a transit router (see module docstring)."""
    mft = state.mft
    if mft is not None:
        if mft.is_stale(now, timing):
            return [Forward()]
        if mft.dst is not None and message.joiner == mft.dst.address:
            # The dst receiver joined *upstream* (originally at the
            # source): its join must keep travelling there or the
            # upstream entry dies and the whole branch collapses (the
            # Fig. 1(b) chains R1->R5->R7 all have dst=r1 while r1's
            # joins refresh S).  It does NOT refresh the local dst
            # entry either — "a tree(S, ri) message refreshes ... the
            # MFT.dst = ri entries down the tree": only tree messages
            # keep a dst alive, so a branching node that data stopped
            # passing through decays instead of intercepting forever.
            return [Forward()]
        receiver = mft.get_receiver(message.joiner)
        if receiver is not None:
            receiver.refresh(now)
            return [Consume()]
        if message.initial:
            mft.add_receiver(message.joiner, now)
            return [Consume()]
        # A periodic join of a receiver attached elsewhere: transit.
        return [Forward()]

    mct = state.mct
    if mct is not None and message.initial:
        if message.joiner in mct:
            return [Forward()]
        fresh = mct.fresh_entries(now, timing)
        if fresh:
            # Promote: oldest fresh MCT receiver becomes dst.
            dst_entry = fresh[0]
            mct.remove(dst_entry.address)
            mft = ReuniteMft(dst=dst_entry)
            mft.add_receiver(message.joiner, now)
            state.mft = mft
            state.mct = None
            return [Consume()]
    return [Forward()]


def process_join_at_source(
    state: ReuniteState,
    message: ReuniteJoin,
    now: float,
    timing: ProtocolTiming,
) -> List[ReuniteAction]:
    """Handle a join arriving at the source.

    The source's MFT: the very first receiver becomes ``dst`` ("the
    source sends data in unicast to the first receiver that joined"),
    later joiners become receiver entries.
    """
    mft = state.mft
    if mft is None:
        from repro.protocols.reunite.tables import ReuniteEntry

        state.mft = ReuniteMft(dst=ReuniteEntry(message.joiner, now))
        return [Consume()]
    if mft.dst is not None and message.joiner == mft.dst.address:
        mft.dst.refresh(now)
        return [Consume()]
    receiver = mft.get_receiver(message.joiner)
    if receiver is not None:
        receiver.refresh(now)
        return [Consume()]
    if mft.dst is None:
        from repro.protocols.reunite.tables import ReuniteEntry

        mft.dst = ReuniteEntry(message.joiner, now)
        return [Consume()]
    mft.add_receiver(message.joiner, now)
    return [Consume()]


def process_tree(
    state: ReuniteState,
    message: ReuniteTree,
    now: float,
    timing: ProtocolTiming,
) -> List[ReuniteAction]:
    """Handle a tree message at a transit router (see module docstring)."""
    mft = state.mft
    if mft is not None:
        if mft.dst is not None and message.target == mft.dst.address:
            if message.marked:
                mft.dst.make_stale()
                return [Forward()]
            mft.dst.refresh(now)
            actions: List[ReuniteAction] = [Forward()]
            actions.extend(
                RegenerateTree(target=e.address)
                for e in mft.fresh_receivers(now, timing)
            )
            return actions
        # A tree for some other receiver passing through a branching
        # node: transit only (its state lives elsewhere).
        return [Forward()]

    if message.marked:
        if state.mct is not None:
            state.mct.remove(message.target)
            if len(state.mct) == 0:
                state.mct = None
        return [Forward()]

    if state.mct is None:
        state.mct = ReuniteMct()
    entry = state.mct.get(message.target)
    if entry is None:
        state.mct.add(message.target, now)
    else:
        entry.refresh(now)
    return [Forward()]
