"""Round-based REUNITE driver (mirror of the HBH static driver).

One round = one protocol period: every receiver's periodic join walks
toward the source under the interception rules; the source then emits
its periodic tree messages (marked for a stale dst), which branching
nodes regenerate per fresh receiver; finally soft state ages.  The
asymmetric-routing pathologies of paper Figs. 2-3 emerge naturally from
these rules — nothing is special-cased.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, List, Optional, Set, Tuple

from repro.core.rules import Consume, Forward
from repro.core.tables import ProtocolTiming, ROUND_TIMING
from repro.errors import ChannelError, ProtocolError
from repro.metrics.distribution import DataDistribution
from repro.obs.profiling import profiled
from repro.protocols.reunite.messages import ReuniteJoin, ReuniteTree
from repro.protocols.reunite.rules import (
    RegenerateTree,
    process_join,
    process_join_at_source,
    process_tree,
)
from repro.protocols.reunite.tables import ReuniteState
from repro.routing.tables import UnicastRouting
from repro.topology.model import NodeKind, Topology

NodeId = Hashable

_MAX_CASCADE = 100_000


class StaticReunite:
    """One REUNITE conversation driven round-by-round to convergence."""

    def __init__(
        self,
        topology: Topology,
        source: NodeId,
        routing: Optional[UnicastRouting] = None,
        timing: ProtocolTiming = ROUND_TIMING,
    ) -> None:
        topology.kind(source)
        self.topology = topology
        self.routing = routing or UnicastRouting(topology)
        self.source = source
        self.timing = timing
        self.channel = ("reunite", source)
        self.source_state = ReuniteState()
        self.states: Dict[NodeId, ReuniteState] = {}
        self.receivers: Set[NodeId] = set()
        self.round_no = 0
        self.messages_processed = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_receiver(self, receiver: NodeId) -> None:
        """Join: the receiver's join is walked immediately and may be
        intercepted anywhere in the existing tree (unlike HBH, REUNITE
        has no first-join exemption — the root of the Fig. 2 problem)."""
        self.topology.kind(receiver)
        if receiver == self.source:
            raise ChannelError("the source cannot join its own conversation")
        if receiver in self.receivers:
            raise ChannelError(f"receiver {receiver} already joined")
        self.receivers.add(receiver)
        self._walk_join(receiver,
                        ReuniteJoin(self.channel, receiver, initial=True))

    def remove_receiver(self, receiver: NodeId) -> None:
        """Leave: go silent; upstream state decays and marked tree
        messages reconfigure the branch (Fig. 2(b-d))."""
        try:
            self.receivers.remove(receiver)
        except KeyError:
            raise ChannelError(f"receiver {receiver} is not joined") from None

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Virtual time: the current round number."""
        return float(self.round_no)

    def run_round(self) -> None:
        """One protocol period: joins, tree cascade, aging."""
        self.round_no += 1
        for receiver in sorted(self.receivers):
            self._walk_join(receiver, ReuniteJoin(self.channel, receiver))
        self._tree_phase()
        self._expire()

    @profiled("reunite.converge")
    def converge(self, max_rounds: int = 40, settle_rounds: int = 2) -> int:
        """Run rounds until the structural snapshot stabilises."""
        stable = 0
        previous = self._snapshot()
        for executed in range(1, max_rounds + 1):
            self.run_round()
            current = self._snapshot()
            if current == previous:
                stable += 1
                if stable >= settle_rounds:
                    return executed
            else:
                stable = 0
                previous = current
        raise ProtocolError(
            f"REUNITE did not converge within {max_rounds} rounds "
            f"({len(self.receivers)} receivers on {self.topology.name!r})"
        )

    def _snapshot(self) -> Tuple:
        now, timing = self.now, self.timing
        items: List[Tuple] = []

        def emit(node: NodeId, state: ReuniteState) -> None:
            if state.mct is not None:
                for entry in state.mct:
                    items.append((node, "mct", entry.address,
                                  entry.is_stale(now, timing)))
            if state.mft is not None:
                dst = state.mft.dst
                items.append((
                    node, "dst",
                    dst.address if dst is not None else None,
                    state.mft.is_stale(now, timing),
                ))
                for entry in state.mft.receivers():
                    items.append((node, "mft", entry.address,
                                  entry.is_stale(now, timing)))

        emit(self.source, self.source_state)
        for node in sorted(self.states):
            emit(node, self.states[node])
        return tuple(items)

    def _expire(self) -> None:
        now, timing = self.now, self.timing
        self.source_state.expire(now, timing)
        source_mft = self.source_state.mft
        if source_mft is not None and source_mft.dst is None:
            # Fig. 2(d): the source re-anchors data on the oldest fresh
            # receiver once the old dst entry dies.
            source_mft.promote_receiver_to_dst(now, timing)
            if source_mft.empty:
                self.source_state.mft = None
        emptied = []
        for node, state in self.states.items():
            state.expire(now, timing)
            if not state.in_tree:
                emptied.append(node)
        for node in emptied:
            del self.states[node]

    # ------------------------------------------------------------------
    # Message walks
    # ------------------------------------------------------------------
    def _state_at(self, node: NodeId) -> ReuniteState:
        state = self.states.get(node)
        if state is None:
            state = ReuniteState()
            self.states[node] = state
        return state

    def _applies_rules(self, node: NodeId) -> bool:
        return (
            node != self.source
            and self.topology.kind(node) is NodeKind.ROUTER
            and self.topology.is_multicast_capable(node)
        )

    def _walk_join(self, origin: NodeId, message: ReuniteJoin) -> None:
        self.messages_processed += 1
        current = origin
        while current != self.source:
            current = self.routing.next_hop(current, self.source)
            if current == self.source:
                process_join_at_source(
                    self.source_state, message, self.now, self.timing
                )
                return
            if not self._applies_rules(current):
                continue
            actions = process_join(
                self._state_at(current), message, self.now, self.timing
            )
            if any(isinstance(action, Consume) for action in actions):
                return

    def _tree_phase(self) -> None:
        queue: Deque[Tuple[NodeId, ReuniteTree]] = deque()
        # A node regenerates tree(S, rj) once per period in the real
        # protocol; dedupe per round so pathological mutual-dst state
        # (possible under asymmetric routing) cannot make the cascade
        # unbounded — the loop then resolves through soft state.
        emitted: Set[Tuple[NodeId, NodeId, bool]] = set()

        def enqueue(origin: NodeId, message: ReuniteTree) -> None:
            key = (origin, message.target, message.marked)
            if key not in emitted:
                emitted.add(key)
                queue.append((origin, message))

        mft = self.source_state.mft
        if mft is None:
            return
        now, timing = self.now, self.timing
        if mft.dst is not None:
            enqueue(
                self.source,
                ReuniteTree(self.channel, mft.dst.address,
                            marked=mft.dst.is_stale(now, timing)),
            )
        for entry in mft.fresh_receivers(now, timing):
            enqueue(self.source, ReuniteTree(self.channel, entry.address))
        steps = 0
        while queue:
            steps += 1
            if steps > _MAX_CASCADE:  # pragma: no cover - safety valve
                raise ProtocolError("REUNITE tree cascade did not terminate")
            origin, message = queue.popleft()
            self._walk_tree(origin, message, queue, enqueue)

    def _walk_tree(self, origin: NodeId, message: ReuniteTree,
                   queue: Deque, enqueue) -> None:
        self.messages_processed += 1
        target_node = message.target
        current = origin
        while current != target_node:
            current = self.routing.next_hop(current, target_node)
            if current == target_node:
                return  # consumed by the receiver (or its leaf node)
            if not self._applies_rules(current):
                continue
            actions = process_tree(
                self._state_at(current), message, self.now, self.timing
            )
            consumed = False
            for action in actions:
                if isinstance(action, Consume):
                    consumed = True
                elif isinstance(action, RegenerateTree):
                    if action.target != current:
                        enqueue(
                            current,
                            ReuniteTree(self.channel, action.target,
                                        marked=action.marked),
                        )
                elif not isinstance(action, Forward):  # pragma: no cover
                    raise ProtocolError(f"unexpected tree action {action!r}")
            if consumed:
                return

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    @profiled("reunite.distribute_data")
    def distribute_data(self) -> DataDistribution:
        """One data packet: the source addresses the original to
        ``MFT.dst`` and one modified copy to every other receiver in
        its MFT; each branching node below does the same when the
        original (addressed to *its* dst) passes through."""
        distribution = DataDistribution(expected=set(self.receivers))
        mft = self.source_state.mft
        if mft is None:
            return distribution
        now, timing = self.now, self.timing
        expanded: Set[Tuple[NodeId, NodeId]] = set()
        if mft.dst is not None:
            self._walk_data(self.source, mft.dst.address, 0.0, distribution,
                            expanded)
        for entry in mft.live_receivers(now, timing):
            self._walk_data(self.source, entry.address, 0.0, distribution,
                            expanded)
        return distribution

    def _walk_data(self, origin: NodeId, target: NodeId, elapsed: float,
                   distribution: DataDistribution,
                   expanded: Set[Tuple[NodeId, NodeId]]) -> None:
        now, timing = self.now, self.timing
        current = origin
        while current != target:
            nxt = self.routing.next_hop(current, target)
            cost = self.topology.cost(current, nxt)
            distribution.record_hop(current, nxt, cost)
            elapsed += cost
            current = nxt
            if current == target:
                break
            state = self.states.get(current)
            if state is None or state.mft is None:
                continue
            mft = state.mft
            if mft.dst is not None and mft.dst.address == target:
                # The original passes its branching node: one modified
                # copy per live receiver (the original continues).  A
                # (node, target) pair duplicates once per packet — a
                # pathological mutual-dst loop would otherwise recurse
                # forever where a real packet just dies by TTL.
                if (current, target) in expanded:
                    continue
                expanded.add((current, target))
                for entry in mft.live_receivers(now, timing):
                    self._walk_data(current, entry.address, elapsed,
                                    distribution, expanded)
        if current in self.receivers:
            distribution.record_delivery(current, elapsed)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def branching_nodes(self) -> List[NodeId]:
        """Routers currently holding an MFT."""
        return sorted(
            node for node, state in self.states.items() if state.is_branching
        )

    def describe(self) -> str:
        """Human-readable dump of the converged tree."""
        lines = [f"REUNITE conversation {self.channel}, round {self.round_no}"]
        mft = self.source_state.mft
        lines.append(f"  source {self.source}: {mft!r}")
        for node in sorted(self.states):
            state = self.states[node]
            table = state.mft if state.mft is not None else state.mct
            lines.append(f"  node {node}: {table!r}")
        return "\n".join(lines)
