"""Round-based REUNITE driver (mirror of the HBH static driver).

One round = one protocol period: every receiver's periodic join walks
toward the source under the interception rules; the source then emits
its periodic tree messages (marked for a stale dst), which branching
nodes regenerate per fresh receiver; finally soft state ages.  The
asymmetric-routing pathologies of paper Figs. 2-3 emerge naturally from
these rules — nothing is special-cased.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Deque, Dict, Hashable, List, Optional, Set, Tuple

from repro.core.rules import Consume, Forward
from repro.core.tables import ProtocolTiming, ROUND_TIMING
from repro.errors import ChannelError, ProtocolError
from repro.metrics.distribution import DataDistribution
from repro.obs.causal import DATA, INITIAL_JOIN, JOIN, TREE, CausalTracer, Span
from repro.obs.flight import FlightRecorder
from repro.obs.profiling import profiled
from repro.obs.registry import channel_label
from repro.obs.timeline import ConvergenceMonitor, TreeTimeline
from repro.protocols.reunite.messages import ReuniteJoin, ReuniteTree
from repro.protocols.reunite.rules import (
    RegenerateTree,
    process_join,
    process_join_at_source,
    process_tree,
)
from repro.protocols.reunite.tables import ReuniteState
from repro.routing.tables import UnicastRouting, shared_routing
from repro.topology.model import NodeKind, Topology

NodeId = Hashable

_MAX_CASCADE = 100_000


class StaticReunite:
    """One REUNITE conversation driven round-by-round to convergence."""

    def __init__(
        self,
        topology: Topology,
        source: NodeId,
        routing: Optional[UnicastRouting] = None,
        timing: ProtocolTiming = ROUND_TIMING,
        group: str = "G",
    ) -> None:
        topology.kind(source)
        self.topology = topology
        self.routing = routing or shared_routing(topology)
        self.source = source
        self.timing = timing
        self.group = group
        self.channel = ("reunite", source)
        self.source_state = ReuniteState()
        self.states: Dict[NodeId, ReuniteState] = {}
        self.receivers: Set[NodeId] = set()
        self.round_no = 0
        self.messages_processed = 0
        self.channel_name = channel_label(source, group)
        #: Memoized-path accessor when the routing substrate offers one
        #: (UnicastRouting does, repaired incrementally under faults;
        #: learned views walk next_hop step by step instead).
        self._route_path = getattr(self.routing, "path_tuple", None)
        #: Optional causal tracer + flight recorder (attach_tracer);
        #: None keeps every walk on the untraced fast path.
        self.causal: Optional[CausalTracer] = None
        self.flight: Optional[FlightRecorder] = None
        #: Optional tree-dynamics timeline (attach_timeline): one check
        #: per round, table diffs at round boundaries only.
        self.timeline: Optional[TreeTimeline] = None
        self._timeline_messages = 0

    # ------------------------------------------------------------------
    # Causal tracing (see repro.obs.causal)
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer: Optional[CausalTracer],
                      flight: Optional[FlightRecorder] = None) -> None:
        """Wire a causal tracer (and optionally a flight recorder) into
        every message walk; ``None`` detaches both."""
        self.causal = tracer
        if tracer is None:
            self.flight = None
            return
        if flight is not None:
            tracer.recorder = flight
        recorder = tracer.recorder
        self.flight = recorder if isinstance(recorder, FlightRecorder) else None

    def attach_timeline(self, timeline: Optional[TreeTimeline],
                        monitor: Optional[ConvergenceMonitor] = None
                        ) -> None:
        """Wire a tree-dynamics timeline (and optionally an online
        convergence monitor) into the round loop; ``None`` detaches."""
        self.timeline = timeline
        self._timeline_messages = self.messages_processed
        if timeline is not None and monitor is not None:
            timeline.attach_monitor(monitor)
        if timeline is not None and timeline.monitor is not None:
            timeline.monitor.watch("reunite", self.channel_name)

    def _span(self, name: str, node: NodeId, target: NodeId = None,
              parent: Optional[Span] = None,
              trace_id: Optional[str] = None) -> Optional[Span]:
        causal = self.causal
        if causal is None or not causal.enabled:
            return None
        return causal.begin(name, node, self.now, self.channel_name,
                            trace_id=trace_id, parent=parent, target=target)

    @staticmethod
    def _stamp(message, span: Optional[Span]):
        if span is None:
            return message
        return replace(message, trace_id=span.trace_id, span_id=span.span_id)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_receiver(self, receiver: NodeId) -> None:
        """Join: the receiver's join is walked immediately and may be
        intercepted anywhere in the existing tree (unlike HBH, REUNITE
        has no first-join exemption — the root of the Fig. 2 problem)."""
        self.topology.kind(receiver)
        if receiver == self.source:
            raise ChannelError("the source cannot join its own conversation")
        if receiver in self.receivers:
            raise ChannelError(f"receiver {receiver} already joined")
        self.receivers.add(receiver)
        timeline = self.timeline
        if timeline is not None and timeline.enabled:
            timeline.perturb(self.now, "reunite", self.channel_name,
                             node=receiver, detail="join")
        span = self._span(INITIAL_JOIN, receiver, target=receiver)
        self._walk_join(
            receiver,
            self._stamp(ReuniteJoin(self.channel, receiver, initial=True),
                        span),
            span,
        )

    def remove_receiver(self, receiver: NodeId) -> None:
        """Leave: go silent; upstream state decays and marked tree
        messages reconfigure the branch (Fig. 2(b-d))."""
        try:
            self.receivers.remove(receiver)
        except KeyError:
            raise ChannelError(f"receiver {receiver} is not joined") from None
        timeline = self.timeline
        if timeline is not None and timeline.enabled:
            timeline.perturb(self.now, "reunite", self.channel_name,
                             node=receiver, detail="leave")

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Virtual time: the current round number."""
        return float(self.round_no)

    def run_round(self) -> None:
        """One protocol period: joins, tree cascade, aging."""
        self.round_no += 1
        for receiver in sorted(self.receivers):
            span = self._span(JOIN, receiver, target=receiver)
            self._walk_join(
                receiver,
                self._stamp(ReuniteJoin(self.channel, receiver), span),
                span,
            )
        self._tree_phase()
        self._expire()
        timeline = self.timeline
        if timeline is not None and timeline.enabled:
            self._observe_timeline(timeline)
        if self.flight is not None:
            watermark = self.causal.next_id if self.causal is not None else 0
            self.flight.snapshot(
                self.channel_name, self.now, f"round {self.round_no}",
                self._snapshot(), span_watermark=watermark,
            )

    @profiled("reunite.converge")
    def converge(self, max_rounds: int = 40, settle_rounds: int = 2) -> int:
        """Run rounds until the structural snapshot stabilises."""
        stable = 0
        previous = self._snapshot()
        for executed in range(1, max_rounds + 1):
            self.run_round()
            current = self._snapshot()
            if current == previous:
                stable += 1
                if stable >= settle_rounds:
                    return executed
            else:
                stable = 0
                previous = current
        raise ProtocolError(
            f"REUNITE did not converge within {max_rounds} rounds "
            f"({len(self.receivers)} receivers on {self.topology.name!r})"
        )

    def _snapshot(self) -> Tuple:
        now, timing = self.now, self.timing
        items: List[Tuple] = []

        def emit(node: NodeId, state: ReuniteState) -> None:
            if state.mct is not None:
                for entry in state.mct:
                    items.append((node, "mct", entry.address,
                                  entry.is_stale(now, timing)))
            if state.mft is not None:
                dst = state.mft.dst
                items.append((
                    node, "dst",
                    dst.address if dst is not None else None,
                    state.mft.is_stale(now, timing),
                ))
                for entry in state.mft.receivers():
                    items.append((node, "mft", entry.address,
                                  entry.is_stale(now, timing)))

        emit(self.source, self.source_state)
        for node in sorted(self.states):
            emit(node, self.states[node])
        return tuple(items)

    def _observe_timeline(self, timeline: TreeTimeline) -> None:
        """Feed the round's table state into the tree-dynamics
        timeline (structural row diff at the round boundary, plus this
        round's control-message count).  REUNITE has no fusion marks;
        the dst anchor is its own table so a Fig. 2(d) re-anchor shows
        up as the dst row moving."""
        now = self.now
        rows: List[Tuple] = []

        def emit(node: NodeId, state: ReuniteState) -> None:
            if state.mct is not None:
                for entry in state.mct:
                    rows.append((node, "mct", entry.address))
            if state.mft is not None:
                dst = state.mft.dst
                if dst is not None:
                    rows.append((node, "dst", dst.address))
                for entry in state.mft.receivers():
                    rows.append((node, "mft", entry.address))

        emit(self.source, self.source_state)
        for node in sorted(self.states):
            emit(node, self.states[node])
        timeline.observe_tables(now, "reunite", self.channel_name, rows)
        timeline.control(now, "reunite", self.channel_name,
                         self.messages_processed - self._timeline_messages)
        self._timeline_messages = self.messages_processed
        timeline.poll(now)

    def _expire(self) -> None:
        now, timing = self.now, self.timing
        self.source_state.expire(now, timing)
        source_mft = self.source_state.mft
        if source_mft is not None and source_mft.dst is None:
            # Fig. 2(d): the source re-anchors data on the oldest fresh
            # receiver once the old dst entry dies.
            source_mft.promote_receiver_to_dst(now, timing)
            if source_mft.empty:
                self.source_state.mft = None
        emptied = []
        for node, state in self.states.items():
            state.expire(now, timing)
            if not state.in_tree:
                emptied.append(node)
        for node in emptied:
            del self.states[node]

    # ------------------------------------------------------------------
    # Message walks
    # ------------------------------------------------------------------
    def _state_at(self, node: NodeId) -> ReuniteState:
        state = self.states.get(node)
        if state is None:
            state = ReuniteState()
            self.states[node] = state
        return state

    def _applies_rules(self, node: NodeId) -> bool:
        return (
            node != self.source
            and self.topology.kind(node) is NodeKind.ROUTER
            and self.topology.is_multicast_capable(node)
        )

    def _hops(self, origin: NodeId, destination: NodeId):
        """The hop sequence ``origin -> destination`` *excluding*
        ``origin`` — what a message walk visits.  Uses the routing
        substrate's memoized path when it has one; otherwise chains
        ``next_hop`` exactly as the walks used to, so learned-routing
        views keep their step-at-a-time semantics."""
        if origin == destination:
            return ()
        route_path = self._route_path
        if route_path is not None:
            return route_path(origin, destination)[1:]
        hops = []
        current = origin
        routing = self.routing
        while current != destination:
            current = routing.next_hop(current, destination)
            hops.append(current)
        return hops

    def _walk_join(self, origin: NodeId, message: ReuniteJoin,
                   span: Optional[Span] = None) -> None:
        self.messages_processed += 1
        for current in self._hops(origin, self.source):
            if span is not None:
                span.hops.append(current)
            if current == self.source:
                if span is not None:
                    before = self._join_facts(self.source_state, message)
                process_join_at_source(
                    self.source_state, message, self.now, self.timing
                )
                if span is not None:
                    self._join_effects(span, self.source, self.source_state,
                                       message, before, at_source=True)
                return
            if not self._applies_rules(current):
                continue
            state = self._state_at(current)
            if span is not None:
                before = self._join_facts(state, message)
            actions = process_join(state, message, self.now, self.timing)
            if any(isinstance(action, Consume) for action in actions):
                if span is not None:
                    self._join_effects(span, current, state, message, before,
                                       at_source=False)
                return

    def _join_facts(self, state, message: ReuniteJoin) -> Tuple[bool, bool]:
        """(joiner already known, node already branching) before the
        join rules ran — enough to name what the interception did."""
        mft = state.mft
        known = (
            mft is not None
            and (mft.get_receiver(message.joiner) is not None
                 or (mft.dst is not None
                     and mft.dst.address == message.joiner))
        )
        return known, mft is not None

    def _join_effects(self, span: Span, node: NodeId, state,
                      message: ReuniteJoin, before: Tuple[bool, bool],
                      at_source: bool) -> None:
        """Record what a consumed REUNITE join did to the node's MFT."""
        known, was_branching = before
        causal = self.causal
        now = self.now
        table = "mft"
        if known:
            causal.effect(span, node, table, message.joiner,
                          "refresh-join", now)
            what = f"refreshed {message.joiner}"
        elif was_branching or at_source:
            causal.effect(span, node, table, message.joiner, "add", now)
            what = f"added {message.joiner}"
        else:
            # An MCT node promoted itself to branching (dst = the old
            # MCT receiver, the joiner added alongside).
            mft = state.mft
            if mft is not None and mft.dst is not None:
                causal.effect(span, node, table, mft.dst.address,
                              "promote-dst", now)
            causal.effect(span, node, table, message.joiner, "add", now)
            what = f"promoted to branching node, added {message.joiner}"
        where = "reached source" if at_source else f"intercepted by {node}"
        causal.finish(span, f"{where} ({what})")

    def _tree_phase(self) -> None:
        queue: Deque[Tuple[NodeId, ReuniteTree, Optional[Span]]] = deque()
        # A node regenerates tree(S, rj) once per period in the real
        # protocol; dedupe per round so pathological mutual-dst state
        # (possible under asymmetric routing) cannot make the cascade
        # unbounded — the loop then resolves through soft state.
        emitted: Set[Tuple[NodeId, NodeId, bool]] = set()

        def enqueue(origin: NodeId, message: ReuniteTree,
                    parent: Optional[Span] = None) -> None:
            key = (origin, message.target, message.marked)
            if key not in emitted:
                emitted.add(key)
                queue.append((origin, message, parent))

        mft = self.source_state.mft
        if mft is None:
            return
        now, timing = self.now, self.timing
        if mft.dst is not None:
            enqueue(
                self.source,
                ReuniteTree(self.channel, mft.dst.address,
                            marked=mft.dst.is_stale(now, timing)),
            )
        for entry in mft.fresh_receivers(now, timing):
            enqueue(self.source, ReuniteTree(self.channel, entry.address))
        causal = self.causal
        tracing = causal is not None and causal.enabled
        round_trace = (
            f"{self.channel_name}/round{self.round_no}.tree" if tracing
            else None
        )
        steps = 0
        while queue:
            steps += 1
            if steps > _MAX_CASCADE:  # pragma: no cover - safety valve
                raise ProtocolError("REUNITE tree cascade did not terminate")
            origin, message, parent = queue.popleft()
            span: Optional[Span] = None
            if tracing:
                span = causal.begin(
                    TREE, origin, self.now, self.channel_name,
                    trace_id=round_trace if parent is None else None,
                    parent=parent, target=message.target,
                )
                message = self._stamp(message, span)
            self._walk_tree(origin, message, queue, enqueue, span)

    def _walk_tree(self, origin: NodeId, message: ReuniteTree,
                   queue: Deque, enqueue,
                   span: Optional[Span] = None) -> None:
        self.messages_processed += 1
        target_node = message.target
        for current in self._hops(origin, target_node):
            if span is not None:
                span.hops.append(current)
            if current == target_node:
                if span is not None:
                    self.causal.finish(span, f"reached {target_node}")
                return  # consumed by the receiver (or its leaf node)
            if not self._applies_rules(current):
                continue
            state = self._state_at(current)
            if span is not None:
                before = self._tree_facts(state, message)
            actions = process_tree(state, message, self.now, self.timing)
            if span is not None:
                self._tree_effects(span, current, state, message, before)
            consumed = False
            for action in actions:
                if isinstance(action, Consume):
                    consumed = True
                elif isinstance(action, RegenerateTree):
                    if action.target != current:
                        enqueue(
                            current,
                            ReuniteTree(self.channel, action.target,
                                        marked=action.marked),
                            span,
                        )
                elif not isinstance(action, Forward):  # pragma: no cover
                    raise ProtocolError(f"unexpected tree action {action!r}")
            if consumed:
                if span is not None:
                    self.causal.finish(span, f"consumed by {current}")
                return
        if span is not None and not span.finished:
            self.causal.finish(span, f"reached {target_node}")

    def _tree_facts(self, state,
                    message: ReuniteTree) -> Tuple[bool, bool]:
        """(target is this node's MFT.dst, target held an MCT entry)
        before the tree rules ran."""
        mft = state.mft
        is_dst = (mft is not None and mft.dst is not None
                  and mft.dst.address == message.target)
        had_mct = (state.mct is not None
                   and state.mct.get(message.target) is not None)
        return is_dst, had_mct

    def _tree_effects(self, span: Span, node: NodeId, state,
                      message: ReuniteTree,
                      before: Tuple[bool, bool]) -> None:
        """Record what one REUNITE tree-rule application mutated."""
        is_dst, had_mct = before
        causal = self.causal
        now = self.now
        target = message.target
        if is_dst:
            causal.effect(span, node, "mft", target,
                          "make-stale" if message.marked else "refresh-tree",
                          now)
        elif state.mft is not None:
            pass  # transit through a branching node: no mutation
        elif message.marked:
            if had_mct:
                causal.effect(span, node, "mct", target, "remove", now)
        else:
            causal.effect(span, node, "mct", target,
                          "refresh-tree" if had_mct else "add", now)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    @profiled("reunite.distribute_data")
    def distribute_data(self) -> DataDistribution:
        """One data packet: the source addresses the original to
        ``MFT.dst`` and one modified copy to every other receiver in
        its MFT; each branching node below does the same when the
        original (addressed to *its* dst) passes through."""
        distribution = DataDistribution(expected=set(self.receivers))
        mft = self.source_state.mft
        if mft is None:
            return distribution
        now, timing = self.now, self.timing
        expanded: Set[Tuple[NodeId, NodeId]] = set()
        root = self._span(DATA, self.source)
        targets: List[NodeId] = []
        if mft.dst is not None:
            targets.append(mft.dst.address)
        targets.extend(e.address for e in mft.live_receivers(now, timing))
        for target in targets:
            child = None
            if root is not None:
                child = self.causal.begin(
                    DATA, self.source, self.now, self.channel_name,
                    parent=root, target=target,
                )
            self._walk_data(self.source, target, 0.0, distribution,
                            expanded, child)
        if root is not None:
            self.causal.finish(root, f"data fan-out from {self.source}")
        return distribution

    def _walk_data(self, origin: NodeId, target: NodeId, elapsed: float,
                   distribution: DataDistribution,
                   expanded: Set[Tuple[NodeId, NodeId]],
                   span: Optional[Span] = None) -> None:
        now, timing = self.now, self.timing
        copies = 0
        current = origin
        for nxt in self._hops(origin, target):
            cost = self.topology.cost(current, nxt)
            distribution.record_hop(current, nxt, cost)
            elapsed += cost
            current = nxt
            if span is not None:
                span.hops.append(current)
            if current == target:
                break
            state = self.states.get(current)
            if state is None or state.mft is None:
                continue
            mft = state.mft
            if mft.dst is not None and mft.dst.address == target:
                # The original passes its branching node: one modified
                # copy per live receiver (the original continues).  A
                # (node, target) pair duplicates once per packet — a
                # pathological mutual-dst loop would otherwise recurse
                # forever where a real packet just dies by TTL.
                if (current, target) in expanded:
                    continue
                expanded.add((current, target))
                for entry in mft.live_receivers(now, timing):
                    child = None
                    if span is not None:
                        child = self.causal.begin(
                            DATA, current, self.now, self.channel_name,
                            parent=span, target=entry.address,
                        )
                    copies += 1
                    self._walk_data(current, entry.address, elapsed,
                                    distribution, expanded, child)
        delivered = current in self.receivers
        if delivered:
            distribution.record_delivery(current, elapsed)
        if span is not None:
            parts = []
            if delivered:
                parts.append(f"delivered to {current} (delay {elapsed:g})")
            if copies:
                parts.append(f"branched into {copies} copies en route")
            self.causal.finish(
                span, "; ".join(parts) or f"terminated at {current}"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def branching_nodes(self) -> List[NodeId]:
        """Routers currently holding an MFT."""
        return sorted(
            node for node, state in self.states.items() if state.is_branching
        )

    def describe(self) -> str:
        """Human-readable dump of the converged tree."""
        lines = [f"REUNITE conversation {self.channel}, round {self.round_no}"]
        mft = self.source_state.mft
        lines.append(f"  source {self.source}: {mft!r}")
        for node in sorted(self.states):
            state = self.states[node]
            table = state.mft if state.mft is not None else state.mct
            lines.append(f"  node {node}: {table!r}")
        return "\n".join(lines)
