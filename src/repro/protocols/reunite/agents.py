"""Event-driven REUNITE agents for the packet-level simulator.

Mirrors the HBH event stack (:mod:`repro.core.router` et al.) on the
REUNITE rules, so the baseline can be studied under real soft-state
timing too: periodic joins from receivers, periodic tree messages from
the source (marked when the dst entry is stale), interception and
promotion at routers, and the dst-addressed recursive-unicast data
plane of paper Fig. 1(b).
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, List, Optional

from repro.addressing import ReuniteChannel
from repro.core.rules import Consume, Forward
from repro.core.tables import ProtocolTiming
from repro.errors import ChannelError, ProtocolError
from repro.netsim.node import Agent
from repro.netsim.packet import DataPayload, Packet, PacketKind
from repro.protocols.reunite.messages import ReuniteJoin, ReuniteTree
from repro.protocols.reunite.rules import (
    RegenerateTree,
    process_join,
    process_join_at_source,
    process_tree,
)
from repro.protocols.reunite.tables import ReuniteState

NodeId = Hashable


class ReuniteRouterAgent(Agent):
    """The REUNITE engine on one multicast-capable router."""

    def __init__(self, timing: Optional[ProtocolTiming] = None) -> None:
        super().__init__()
        self.timing = timing or ProtocolTiming()
        self.states: Dict[ReuniteChannel, ReuniteState] = {}

    def start(self) -> None:
        self._schedule_housekeeping()

    def crash(self) -> None:
        """Fault plane: lose every conversation's table state."""
        self.states.clear()

    def _schedule_housekeeping(self) -> None:
        self.node.network.simulator.schedule(
            self.timing.tree_period, self._housekeeping
        )

    def _housekeeping(self) -> None:
        now = self.node.network.simulator.now
        emptied = [
            channel for channel, state in self.states.items()
            if (state.expire(now, self.timing) or True) and not state.in_tree
        ]
        for channel in emptied:
            del self.states[channel]
        self._schedule_housekeeping()

    def intercept(self, packet: Packet, arrived_from) -> bool:
        payload = packet.payload
        now = self.node.network.simulator.now
        if isinstance(payload, ReuniteJoin):
            actions = process_join(self._state(payload.channel), payload,
                                   now, self.timing)
            return self._apply(payload.channel, actions)
        if isinstance(payload, ReuniteTree):
            actions = process_tree(self._state(payload.channel), payload,
                                   now, self.timing)
            return self._apply(payload.channel, actions)
        if isinstance(payload, DataPayload) and isinstance(
                payload.channel, ReuniteChannel):
            return self._branch_data(packet, payload, now)
        return False

    def _branch_data(self, packet: Packet, payload: DataPayload,
                     now: float) -> bool:
        """Duplicate data addressed to this node's dst as it passes
        through: one modified copy per live receiver.  The original is
        NOT consumed — it keeps travelling toward dst."""
        state = self.states.get(payload.channel)
        if state is None or state.mft is None or state.mft.dst is None:
            return False
        if packet.dst != state.mft.dst.address:
            return False
        for entry in state.mft.live_receivers(now, self.timing):
            self.node.emit(packet.readdressed(entry.address))
        return False  # original continues toward dst

    def _apply(self, channel: ReuniteChannel, actions: List) -> bool:
        consumed = False
        for action in actions:
            if isinstance(action, Forward):
                continue
            if isinstance(action, Consume):
                consumed = True
            elif isinstance(action, RegenerateTree):
                if action.target == self.node.address:
                    continue
                self.node.emit(Packet(
                    src=self.node.address,
                    dst=action.target,
                    payload=ReuniteTree(channel, action.target,
                                        marked=action.marked),
                ))
            else:  # pragma: no cover - exhaustive
                raise ProtocolError(f"unknown action {action!r}")
        return consumed

    def _state(self, channel: ReuniteChannel) -> ReuniteState:
        state = self.states.get(channel)
        if state is None:
            state = ReuniteState()
            self.states[channel] = state
        return state


class ReuniteSourceAgent(Agent):
    """The source endpoint of one REUNITE conversation."""

    def __init__(self, port: int = 5000,
                 timing: Optional[ProtocolTiming] = None) -> None:
        super().__init__()
        self.port = port
        self.timing = timing or ProtocolTiming()
        self.state = ReuniteState()
        self.channel: Optional[ReuniteChannel] = None
        self._sequence = itertools.count()

    def attached(self, node) -> None:
        super().attached(node)
        self.channel = ReuniteChannel(node.address, self.port)

    def start(self) -> None:
        self._schedule_tree_round()

    def _schedule_tree_round(self) -> None:
        self.node.network.simulator.schedule(
            self.timing.tree_period, self._tree_round
        )

    def _tree_round(self) -> None:
        now = self.node.network.simulator.now
        self.state.expire(now, self.timing)
        mft = self.state.mft
        if mft is not None and mft.dst is None:
            mft.promote_receiver_to_dst(now, self.timing)
            if mft.empty:
                self.state.mft = None
                mft = None
        if mft is not None:
            if mft.dst is not None:
                self.node.emit(Packet(
                    src=self.node.address,
                    dst=mft.dst.address,
                    payload=ReuniteTree(
                        self.channel, mft.dst.address,
                        marked=mft.dst.is_stale(now, self.timing),
                    ),
                ))
            for entry in mft.fresh_receivers(now, self.timing):
                self.node.emit(Packet(
                    src=self.node.address,
                    dst=entry.address,
                    payload=ReuniteTree(self.channel, entry.address),
                ))
        self._schedule_tree_round()

    def intercept(self, packet: Packet, arrived_from) -> bool:
        if packet.dst != self.node.address:
            return False
        payload = packet.payload
        if isinstance(payload, ReuniteJoin) and \
                payload.channel == self.channel:
            now = self.node.network.simulator.now
            process_join_at_source(self.state, payload, now, self.timing)
            return True
        return False

    def send_data(self, stream_id: int = 0) -> int:
        """One data packet: the original to dst plus one copy per
        receiver in the source's own MFT."""
        now = self.node.network.simulator.now
        mft = self.state.mft
        if mft is None:
            return 0
        payload = DataPayload(channel=self.channel, stream_id=stream_id,
                              sequence=next(self._sequence), sent_at=now)
        emitted = 0
        if mft.dst is not None:
            self.node.emit(Packet(src=self.node.address,
                                  dst=mft.dst.address, payload=payload,
                                  kind=PacketKind.DATA))
            emitted += 1
        for entry in mft.live_receivers(now, self.timing):
            self.node.emit(Packet(src=self.node.address,
                                  dst=entry.address, payload=payload,
                                  kind=PacketKind.DATA))
            emitted += 1
        return emitted


class ReuniteReceiverAgent(Agent):
    """A REUNITE subscriber on a host node."""

    def __init__(self, channel: ReuniteChannel,
                 timing: Optional[ProtocolTiming] = None) -> None:
        super().__init__()
        self.channel = channel
        self.timing = timing or ProtocolTiming()
        self.joined = False
        self.deliveries: List[float] = []
        self._seen = set()

    def join(self) -> None:
        """Subscribe: initial join establishes the attachment."""
        if self.joined:
            raise ChannelError(f"{self.node.node_id} already joined")
        self.joined = True
        self._send_join(initial=True)
        self._schedule_refresh()

    def leave(self) -> None:
        """Unsubscribe by going silent."""
        if not self.joined:
            raise ChannelError(f"{self.node.node_id} is not joined")
        self.joined = False

    def _send_join(self, initial: bool = False) -> None:
        self.node.emit(Packet(
            src=self.node.address,
            dst=self.channel.source,
            payload=ReuniteJoin(self.channel, self.node.address,
                                initial=initial),
        ))

    def _schedule_refresh(self) -> None:
        self.node.network.simulator.schedule(
            self.timing.join_period, self._refresh
        )

    def _refresh(self) -> None:
        if not self.joined:
            return
        self._send_join()
        self._schedule_refresh()

    def deliver(self, packet: Packet) -> bool:
        payload = packet.payload
        if isinstance(payload, DataPayload) and \
                payload.channel == self.channel:
            if not self.joined:
                return False  # stray data for an unsubscribed host
            key = (payload.stream_id, payload.sequence)
            if key not in self._seen:
                self._seen.add(key)
                now = self.node.network.simulator.now
                self.deliveries.append(now - payload.sent_at)
            return True
        if isinstance(payload, ReuniteTree) and \
                payload.channel == self.channel:
            return True
        return False
