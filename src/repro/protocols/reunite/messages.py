"""REUNITE control messages.

Two message types (paper Section 2.1): ``join`` travels upstream from
receivers toward the source; ``tree`` messages are periodically
multicast by the source to refresh the soft state of the tree.  A
*marked* tree message announces that data addressed to its target will
stop soon, triggering the departure reconfiguration of Fig. 2(b-d).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

Addr = Hashable


@dataclass(frozen=True, slots=True)
class ReuniteJoin:
    """``join(S, joiner)`` — refreshes the joiner's entry at the node
    where it joined; intercepted by the first on-tree router.

    ``initial`` marks the join that *establishes* the attachment: only
    an initial join may create a new receiver entry or promote an MCT
    node to branching (paper Fig. 2: "r2 joined the channel at R3" on
    its first join).  Periodic joins refresh existing state and
    otherwise travel on — if they could re-attach a receiver at every
    newly-promoted node they cross, attachments would migrate
    endlessly under asymmetric routing and orphan the source's dst
    chain (a livelock we observed; a working implementation must pin
    the attachment).  After an attachment decays, the receiver's joins
    reach the source again and re-attach there (Fig. 2(c)).
    """

    channel: Hashable
    joiner: Addr
    initial: bool = False
    #: Causal-tracing identity (see :mod:`repro.obs.causal`): excluded
    #: from equality/hash so traced and untraced runs dedup identically.
    trace_id: Optional[str] = field(default=None, compare=False)
    span_id: Optional[int] = field(default=None, compare=False)

    def __str__(self) -> str:
        tag = "join*" if self.initial else "join"
        return f"{tag}({self.channel}, {self.joiner})"


@dataclass(frozen=True, slots=True)
class ReuniteTree:
    """``tree(S, target)`` — refreshes MCT entries and ``MFT.dst``
    entries down the tree; ``marked`` signals impending removal of the
    target's branch."""

    channel: Hashable
    target: Addr
    marked: bool = False
    trace_id: Optional[str] = field(default=None, compare=False)
    span_id: Optional[int] = field(default=None, compare=False)

    def __str__(self) -> str:
        tag = "tree!" if self.marked else "tree"
        return f"{tag}({self.channel}, {self.target})"
