"""REUNITE tables.

A REUNITE router in a tree keeps either:

- an **MCT** — control-plane entries ``<S, ri>`` installed by tree
  messages passing through (one per receiver whose tree messages cross
  this router), never used for forwarding; or
- an **MFT** — a special ``dst`` entry (``MFT<S>.dst``, the first
  receiver that joined below this node, whose address incoming data
  carries) plus the other receivers that joined here.

t1/t2 soft state mirrors HBH's (the paper describes both with the same
timer discipline): t1 expiry makes an entry stale, t2 destroys it.  A
*stale* MFT (= stale dst) keeps forwarding data but stops intercepting
joins and regenerating tree messages — the pivot of the departure
reconfiguration in paper Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional

from repro.core.tables import ProtocolTiming

Addr = Hashable


@dataclass
class ReuniteEntry:
    """One table entry (dst, receiver, or MCT line) with t1/t2 state."""

    address: Addr
    refreshed_at: float
    forced_stale: bool = False

    def is_stale(self, now: float, timing: ProtocolTiming) -> bool:
        """t1 expired (or force-expired by a marked tree message)."""
        return self.forced_stale or (now - self.refreshed_at) >= timing.t1

    def is_dead(self, now: float, timing: ProtocolTiming) -> bool:
        """t2 expired — destroy the entry."""
        return (now - self.refreshed_at) >= timing.t2

    def refresh(self, now: float) -> None:
        """Restart both timers (join or unmarked tree message)."""
        self.refreshed_at = now
        self.forced_stale = False

    def make_stale(self) -> None:
        """Force t1 expired (marked tree message hit this entry)."""
        self.forced_stale = True


class ReuniteMct:
    """Control table: entries keyed by the receiver whose tree messages
    pass through this (non-branching) router."""

    def __init__(self) -> None:
        self._entries: Dict[Addr, ReuniteEntry] = {}

    def __contains__(self, address: Addr) -> bool:
        return address in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ReuniteEntry]:
        return iter(list(self._entries.values()))

    def get(self, address: Addr) -> Optional[ReuniteEntry]:
        """Entry for ``address``, or None."""
        return self._entries.get(address)

    def add(self, address: Addr, now: float) -> ReuniteEntry:
        """Install a new entry (tree message traversal)."""
        entry = ReuniteEntry(address, now)
        self._entries[address] = entry
        return entry

    def remove(self, address: Addr) -> None:
        """Destroy the entry (marked tree message or t2)."""
        self._entries.pop(address, None)

    def fresh_entries(self, now: float, timing: ProtocolTiming
                      ) -> List[ReuniteEntry]:
        """Entries whose t1 has not expired, insertion order (the first
        is the promotion candidate for ``dst``)."""
        return [e for e in self._entries.values()
                if not e.is_stale(now, timing)]

    def expire(self, now: float, timing: ProtocolTiming) -> List[Addr]:
        """Drop t2-dead entries; returns their addresses."""
        dead = [a for a, e in self._entries.items() if e.is_dead(now, timing)]
        for address in dead:
            del self._entries[address]
        return dead

    def __repr__(self) -> str:
        return f"rMCT[{', '.join(str(a) for a in self._entries)}]"


class ReuniteMft:
    """Forwarding table: the ``dst`` entry plus other receivers."""

    def __init__(self, dst: ReuniteEntry) -> None:
        self.dst: Optional[ReuniteEntry] = dst
        self._receivers: Dict[Addr, ReuniteEntry] = {}

    # -- receivers -----------------------------------------------------
    def get_receiver(self, address: Addr) -> Optional[ReuniteEntry]:
        """The (non-dst) receiver entry for ``address``, or None."""
        return self._receivers.get(address)

    def add_receiver(self, address: Addr, now: float) -> ReuniteEntry:
        """A receiver joined at this node."""
        entry = ReuniteEntry(address, now)
        self._receivers[address] = entry
        return entry

    def receivers(self) -> List[ReuniteEntry]:
        """Non-dst receiver entries, insertion order."""
        return list(self._receivers.values())

    def live_receivers(self, now: float, timing: ProtocolTiming
                       ) -> List[ReuniteEntry]:
        """Receivers still eligible for data copies (not t2-dead)."""
        return [e for e in self._receivers.values()
                if not e.is_dead(now, timing)]

    def fresh_receivers(self, now: float, timing: ProtocolTiming
                        ) -> List[ReuniteEntry]:
        """Receivers eligible for downstream tree messages (not stale)."""
        return [e for e in self._receivers.values()
                if not e.is_stale(now, timing)]

    # -- table-level state ---------------------------------------------
    def is_stale(self, now: float, timing: ProtocolTiming) -> bool:
        """A stale (or headless) MFT: no join interception, no tree
        regeneration — paper Fig. 2(c)."""
        return self.dst is None or self.dst.is_stale(now, timing)

    def expire(self, now: float, timing: ProtocolTiming) -> List[Addr]:
        """Drop t2-dead entries (dst included); returns addresses."""
        removed: List[Addr] = []
        if self.dst is not None and self.dst.is_dead(now, timing):
            removed.append(self.dst.address)
            self.dst = None
        dead = [a for a, e in self._receivers.items()
                if e.is_dead(now, timing)]
        for address in dead:
            removed.append(address)
            del self._receivers[address]
        return removed

    def promote_receiver_to_dst(self, now: float,
                                timing: ProtocolTiming) -> Optional[Addr]:
        """After dst death at the *source*, the oldest fresh receiver
        becomes the new dst (paper Fig. 2(d): data re-addressed to r2).
        Returns the promoted address, if any."""
        for address, entry in list(self._receivers.items()):
            if not entry.is_stale(now, timing):
                del self._receivers[address]
                self.dst = entry
                return address
        return None

    @property
    def empty(self) -> bool:
        """No dst and no receivers: the MFT is destroyed."""
        return self.dst is None and not self._receivers

    def __repr__(self) -> str:
        dst = self.dst.address if self.dst is not None else "-"
        rest = ", ".join(str(a) for a in self._receivers)
        return f"rMFT[dst={dst}; {rest}]"


@dataclass
class ReuniteState:
    """One router's REUNITE state for one conversation."""

    mct: Optional[ReuniteMct] = None
    mft: Optional[ReuniteMft] = None

    @property
    def is_branching(self) -> bool:
        """Whether this router holds an MFT."""
        return self.mft is not None

    @property
    def in_tree(self) -> bool:
        """Whether this router holds any state for the conversation."""
        return self.mct is not None or self.mft is not None

    def expire(self, now: float, timing: ProtocolTiming) -> List[Addr]:
        """Age out dead state; returns destroyed addresses."""
        removed: List[Addr] = []
        if self.mct is not None:
            removed.extend(self.mct.expire(now, timing))
            if len(self.mct) == 0:
                self.mct = None
        if self.mft is not None:
            removed.extend(self.mft.expire(now, timing))
            if self.mft.empty:
                self.mft = None
        return removed
