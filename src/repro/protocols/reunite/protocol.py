"""REUNITE registered under the common protocol interface."""

from __future__ import annotations

from typing import Hashable, List, Optional

from repro.core.tables import ProtocolTiming, ROUND_TIMING
from repro.metrics.distribution import DataDistribution
from repro.protocols.base import MulticastProtocol, register_protocol
from repro.protocols.reunite.static_driver import StaticReunite
from repro.routing.tables import UnicastRouting
from repro.topology.model import Topology

NodeId = Hashable


@register_protocol("reunite")
class ReuniteProtocol(MulticastProtocol):
    """REUNITE baseline, round-driven to convergence."""

    def __init__(self, topology: Topology, source: NodeId,
                 routing: Optional[UnicastRouting] = None,
                 timing: ProtocolTiming = ROUND_TIMING,
                 group: str = "G") -> None:
        super().__init__(topology, source, routing, group=group)
        self.driver = StaticReunite(topology, source, routing=self.routing,
                                    timing=timing, group=group)

    def add_receiver(self, receiver: NodeId) -> None:
        self.driver.add_receiver(receiver)
        self.receivers.add(receiver)

    def remove_receiver(self, receiver: NodeId) -> None:
        self.driver.remove_receiver(receiver)
        self.receivers.discard(receiver)

    def converge(self, max_rounds: int = 40) -> int:
        return self.driver.converge(max_rounds=max_rounds)

    def distribute_data(self) -> DataDistribution:
        return self.driver.distribute_data()

    def control_message_count(self) -> int:
        return self.driver.messages_processed

    def branching_nodes(self) -> List[NodeId]:
        return self.driver.branching_nodes()

    def soft_state(self):
        from repro.verify.state import reunite_soft_state

        return reunite_soft_state(self.driver)

    def attach_tracer(self, tracer, flight=None) -> bool:
        self.driver.attach_tracer(tracer, flight=flight)
        return True

    def causal_tracer(self):
        return self.driver.causal

    def attach_timeline(self, timeline, monitor=None) -> bool:
        self.driver.attach_timeline(timeline, monitor=monitor)
        return True

    def finish_timeline(self) -> None:
        timeline = self.driver.timeline
        if timeline is not None and timeline.monitor is not None:
            timeline.monitor.finalize(self.driver.now)
