"""REUNITE — REcursive UNIcast TrEes (Stoica, Ng & Zhang, INFOCOM 2000).

The baseline HBH improves on, implemented as the paper describes it in
Section 2 (and "according to [21]", as the authors did for their own
simulations):

- a conversation is ``<S, P>`` (source address + port), no class-D
  addresses;
- non-branching routers keep control-plane-only ``MCT`` entries,
  branching routers keep an ``MFT`` with a special ``dst`` entry (the
  first receiver below them);
- joins travel toward the source and are intercepted by the first
  router already in the tree, which may *promote* itself to a
  branching node (paper Fig. 2);
- data is addressed to ``MFT<S>.dst``; a branching router forwards the
  original toward dst and emits one modified copy per other receiver;
- departures propagate *marked* tree messages that let downstream
  receivers re-join upstream while data keeps flowing (Fig. 2(b-d)).

Under asymmetric unicast routing this construction yields non-shortest
branches (Fig. 2) and duplicate copies on shared links (Fig. 3) — the
pathologies the evaluation quantifies.
"""

from repro.protocols.reunite.messages import ReuniteJoin, ReuniteTree
from repro.protocols.reunite.tables import (
    ReuniteMct,
    ReuniteMft,
    ReuniteEntry,
    ReuniteState,
)
from repro.protocols.reunite.static_driver import StaticReunite
from repro.protocols.reunite.protocol import ReuniteProtocol
from repro.protocols.reunite.agents import (
    ReuniteReceiverAgent,
    ReuniteRouterAgent,
    ReuniteSourceAgent,
)
from repro.protocols.reunite.session import (
    ReuniteSession,
    ensure_reunite_routers,
)

__all__ = [
    "ReuniteReceiverAgent",
    "ReuniteRouterAgent",
    "ReuniteSourceAgent",
    "ReuniteSession",
    "ensure_reunite_routers",
    "ReuniteJoin",
    "ReuniteTree",
    "ReuniteMct",
    "ReuniteMft",
    "ReuniteEntry",
    "ReuniteState",
    "StaticReunite",
    "ReuniteProtocol",
]
