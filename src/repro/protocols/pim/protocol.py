"""PIM-SS and PIM-SM under the common protocol interface."""

from __future__ import annotations

from typing import Hashable, List, Optional

from repro._rand import SeedLike
from repro.metrics.distribution import DataDistribution
from repro.protocols.base import MulticastProtocol, register_protocol
from repro.protocols.pim.rp import select_rp
from repro.protocols.pim.trees import ReverseSpt
from repro.routing.tables import UnicastRouting
from repro.topology.model import Topology

NodeId = Hashable


@register_protocol("pim-ss")
class PimSsProtocol(MulticastProtocol):
    """Source-specific reverse SPT (the PIM-SSM tree structure)."""

    def __init__(self, topology: Topology, source: NodeId,
                 routing: Optional[UnicastRouting] = None,
                 group: str = "G") -> None:
        super().__init__(topology, source, routing, group=group)
        self.tree = ReverseSpt(topology, source, routing=self.routing)

    def add_receiver(self, receiver: NodeId) -> None:
        self.tree.graft(receiver)
        self.receivers.add(receiver)

    def remove_receiver(self, receiver: NodeId) -> None:
        self.tree.prune(receiver)
        self.receivers.discard(receiver)

    def converge(self, max_rounds: int = 40) -> int:
        """Centralized construction: the tree is already in place."""
        return 0

    def distribute_data(self) -> DataDistribution:
        distribution = DataDistribution(expected=set(self.receivers))
        self.tree.distribute(distribution)
        return distribution

    def control_message_count(self) -> int:
        return self.tree.control_hops

    def branching_nodes(self) -> List[NodeId]:
        return sorted(
            node for node, kids in self.tree.children().items()
            if len(kids) > 1
        )

    def soft_state(self):
        """Computed source tree: no refresh-timed state to go stale."""
        return None


@register_protocol("pim-sm")
class PimSmProtocol(MulticastProtocol):
    """Shared reverse SPT rooted at a rendez-vous point.

    Data is unicast-encapsulated from the source to the RP along the
    source's *forward* shortest path (register tunnelling), then
    distributed down the shared tree.  The encapsulated leg's copies
    are counted in the tree cost, and its (minimised) delay is part of
    every receiver's delay — reproducing both "unexpected" Fig. 8(a)
    effects the paper discusses.
    """

    def __init__(self, topology: Topology, source: NodeId,
                 routing: Optional[UnicastRouting] = None,
                 rp: Optional[NodeId] = None,
                 rp_strategy: str = "median",
                 rp_seed: SeedLike = None,
                 group: str = "G") -> None:
        super().__init__(topology, source, routing, group=group)
        if rp is None:
            rp = select_rp(topology, self.routing, strategy=rp_strategy,
                           seed=rp_seed)
        self.rp = rp
        self.tree = ReverseSpt(topology, rp, routing=self.routing)

    def add_receiver(self, receiver: NodeId) -> None:
        self.tree.graft(receiver)
        self.receivers.add(receiver)

    def remove_receiver(self, receiver: NodeId) -> None:
        self.tree.prune(receiver)
        self.receivers.discard(receiver)

    def converge(self, max_rounds: int = 40) -> int:
        """Centralized construction: the tree is already in place."""
        return 0

    def distribute_data(self) -> DataDistribution:
        distribution = DataDistribution(expected=set(self.receivers))
        if not self.receivers:
            return distribution
        register_delay = 0.0
        if self.source != self.rp:
            # Register leg: unicast encapsulation along the forward
            # shortest path source -> RP (delay-optimal by construction).
            path = self.routing.path(self.source, self.rp)
            for a, b in zip(path, path[1:]):
                cost = self.topology.cost(a, b)
                distribution.record_hop(a, b, cost)
                register_delay += cost
        self.tree.distribute(distribution, base_delay=register_delay)
        return distribution

    def control_message_count(self) -> int:
        return self.tree.control_hops

    def branching_nodes(self) -> List[NodeId]:
        return sorted(
            node for node, kids in self.tree.children().items()
            if len(kids) > 1
        )

    def soft_state(self):
        """Computed shared tree: no refresh-timed state to go stale."""
        return None
