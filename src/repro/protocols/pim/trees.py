"""Reverse shortest-path tree construction (the RPF structure).

Both PIM baselines are built from the same object: a :class:`ReverseSpt`
rooted at some node ``root`` (the source for PIM-SS, the RP for
PIM-SM).  Each joined receiver grafts the *reverse* of its unicast path
toward the root — i.e. every on-tree node's upstream neighbor is its
unicast next hop toward the root, which is exactly the RPF check.  Data
flows root->leaves, traversing each tree link once (the RPF guarantee
the paper cites: "at the maximum one copy of the same packet is
transmitted at each link").

Note the asymmetry consequence measured in Fig. 8: the data-flow
direction of each link is the *opposite* of the direction used to
select it, so with asymmetric costs the root->receiver delay is not
minimised ("the PIM-SS tree is a reverse SPT and not a SPT").
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.metrics.distribution import DataDistribution
from repro.routing.tables import UnicastRouting, shared_routing
from repro.topology.model import Topology

NodeId = Hashable


class ReverseSpt:
    """A reverse SPT rooted at ``root`` over the joined receivers."""

    def __init__(self, topology: Topology, root: NodeId,
                 routing: Optional[UnicastRouting] = None) -> None:
        topology.kind(root)
        self.topology = topology
        self.routing = routing or shared_routing(topology)
        self.root = root
        #: node -> upstream neighbor toward the root (RPF parent).
        self._parent: Dict[NodeId, NodeId] = {}
        self.receivers: Set[NodeId] = set()
        #: Join/prune message hops processed while shaping the tree —
        #: the control-overhead analogue of the rule-event counters the
        #: soft-state drivers keep (one hop == one Join/Prune handled).
        self.control_hops = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def graft(self, receiver: NodeId) -> None:
        """Join ``receiver``: install RPF state along its unicast path
        to the root (stopping at the first on-tree node)."""
        self.topology.kind(receiver)
        if receiver == self.root:
            raise ProtocolError("the root cannot graft onto its own tree")
        self.receivers.add(receiver)
        node = receiver
        while node != self.root and node not in self._parent:
            parent = self.routing.next_hop(node, self.root)
            self._parent[node] = parent
            self.control_hops += 1
            node = parent

    def prune(self, receiver: NodeId) -> None:
        """Leave: drop the receiver, then trim branches that no longer
        lead to any receiver (PIM prune propagation)."""
        self.receivers.discard(receiver)
        needed: Set[NodeId] = set()
        for live in self.receivers:
            node = live
            while node != self.root:
                if node in needed:
                    break
                needed.add(node)
                node = self._parent[node]
        for node in list(self._parent):
            if node not in needed:
                del self._parent[node]
                self.control_hops += 1

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def tree_links(self) -> List[Tuple[NodeId, NodeId]]:
        """Directed data-plane links (parent -> child), sorted."""
        return sorted((parent, child) for child, parent in self._parent.items())

    def children(self) -> Dict[NodeId, List[NodeId]]:
        """parent -> sorted children map."""
        result: Dict[NodeId, List[NodeId]] = {}
        for child, parent in self._parent.items():
            result.setdefault(parent, []).append(child)
        for siblings in result.values():
            siblings.sort()
        return result

    def on_tree(self, node: NodeId) -> bool:
        """Whether ``node`` is on the tree (root included)."""
        return node == self.root or node in self._parent

    def depth_costs(self) -> Dict[NodeId, float]:
        """Data-flow delay from the root to every on-tree node.

        Uses the parent->child directed link costs (the direction data
        actually flows), which differ from the costs that selected the
        paths — the reverse-SPT delay penalty.
        """
        delays: Dict[NodeId, float] = {self.root: 0.0}
        children = self.children()
        frontier = [self.root]
        while frontier:
            node = frontier.pop()
            for child in children.get(node, ()):  # deterministic order
                delays[child] = delays[node] + self.topology.cost(node, child)
                frontier.append(child)
        return delays

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def distribute(self, distribution: DataDistribution,
                   base_delay: float = 0.0) -> None:
        """Record one packet flooding root->leaves into ``distribution``.

        ``base_delay`` offsets arrivals (PIM-SM adds the source->RP
        encapsulation delay).  Every tree link carries exactly one copy.
        """
        delays = self.depth_costs()
        for parent, child in self.tree_links():
            distribution.record_hop(parent, child,
                                    self.topology.cost(parent, child))
        for receiver in self.receivers:
            delay = delays.get(receiver)
            if delay is None:  # pragma: no cover - graft guarantees this
                raise ProtocolError(f"receiver {receiver} fell off the tree")
            distribution.record_delivery(receiver, base_delay + delay)
