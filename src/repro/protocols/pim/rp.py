"""Rendez-vous point selection for PIM-SM shared trees.

The paper does not state how NS's centralized implementation placed the
RP; the shared-tree results depend on it, so this module offers several
strategies and the ``abl-rp`` ablation sweeps them:

- ``median`` (default): the router minimising the sum of directed
  distances to and from every router — a balanced "core" placement;
- ``eccentricity``: the router minimising its worst-case distance;
- ``random``: uniform over routers (seeded);
- ``first``: the lowest-numbered router (a degenerate but reproducible
  choice).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional

from repro._rand import SeedLike, make_rng
from repro.errors import ExperimentError
from repro.routing.tables import UnicastRouting, shared_routing
from repro.topology.model import Topology

NodeId = Hashable


def _median_rp(topology: Topology, routing: UnicastRouting,
               seed: SeedLike) -> NodeId:
    best_node = None
    best_total = float("inf")
    for candidate in topology.routers:
        total = 0.0
        for other in topology.routers:
            if other == candidate:
                continue
            total += routing.distance(candidate, other)
            total += routing.distance(other, candidate)
        if total < best_total:
            best_total = total
            best_node = candidate
    return best_node


def _eccentricity_rp(topology: Topology, routing: UnicastRouting,
                     seed: SeedLike) -> NodeId:
    best_node = None
    best_worst = float("inf")
    for candidate in topology.routers:
        worst = max(
            max(routing.distance(candidate, other),
                routing.distance(other, candidate))
            for other in topology.routers if other != candidate
        )
        if worst < best_worst:
            best_worst = worst
            best_node = candidate
    return best_node


def _random_rp(topology: Topology, routing: UnicastRouting,
               seed: SeedLike) -> NodeId:
    return make_rng(seed).choice(topology.routers)


def _first_rp(topology: Topology, routing: UnicastRouting,
              seed: SeedLike) -> NodeId:
    return topology.routers[0]


RP_STRATEGIES: Dict[str, Callable] = {
    "median": _median_rp,
    "eccentricity": _eccentricity_rp,
    "random": _random_rp,
    "first": _first_rp,
}


def select_rp(
    topology: Topology,
    routing: Optional[UnicastRouting] = None,
    strategy: str = "median",
    seed: SeedLike = None,
) -> NodeId:
    """Pick the rendez-vous point router for a PIM-SM shared tree."""
    if not topology.routers:
        raise ExperimentError("topology has no routers to pick an RP from")
    try:
        chooser = RP_STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(RP_STRATEGIES))
        raise ExperimentError(
            f"unknown RP strategy {strategy!r} (known: {known})"
        ) from None
    routing = routing or shared_routing(topology)
    return chooser(topology, routing, seed)
