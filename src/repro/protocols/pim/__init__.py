"""Centralized PIM baselines, as used in the paper's NS simulations.

The paper (Section 4.2): "NS's implementation is centralized and the
change from the shared tree to the source tree is realized through an
explicit command ... Therefore, PIM-SM in our simulations refers to a
protocol that constructs exclusively shared trees, whereas PIM-SS is a
protocol that only constructs source trees.  The tree structure of
PIM-SS is the same as that of PIM-SSM, i.e., a reverse SPT."

- :class:`~repro.protocols.pim.protocol.PimSsProtocol` ("pim-ss"):
  the reverse shortest-path tree rooted at the source (RPF: each node's
  upstream is its unicast next hop toward S).
- :class:`~repro.protocols.pim.protocol.PimSmProtocol` ("pim-sm"):
  a reverse SPT rooted at a rendez-vous point; the source unicasts
  (encapsulates) data to the RP along its *forward* shortest path,
  which is why delay S->RP is minimised (the paper's explanation for
  PIM-SM beating PIM-SS on the ISP topology, Section 4.2.2).
"""

from repro.protocols.pim.rp import select_rp, RP_STRATEGIES
from repro.protocols.pim.trees import ReverseSpt
from repro.protocols.pim.protocol import PimSmProtocol, PimSsProtocol

__all__ = [
    "select_rp",
    "RP_STRATEGIES",
    "ReverseSpt",
    "PimSmProtocol",
    "PimSsProtocol",
]
