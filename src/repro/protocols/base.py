"""The driver interface every multicast protocol implements.

A protocol driver owns one multicast conversation rooted at a source
node: receivers join/leave, the control plane converges, and
``distribute_data`` measures how one data packet spreads — producing the
:class:`~repro.metrics.distribution.DataDistribution` all metrics are
computed from.

A registry maps protocol names ("hbh", "reunite", "pim-sm", "pim-ss")
to factories so experiments can be configured by name, matching the
four curves of the paper's figures.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Hashable, List, Optional, Set

from repro.errors import ExperimentError
from repro.metrics.distribution import DataDistribution
from repro.routing.tables import UnicastRouting
from repro.topology.model import Topology

NodeId = Hashable


class MulticastProtocol(abc.ABC):
    """One multicast conversation under one routing protocol."""

    #: Registry name, set by subclasses ("hbh", "reunite", ...).
    name: str = "abstract"

    def __init__(self, topology: Topology, source: NodeId,
                 routing: Optional[UnicastRouting] = None) -> None:
        topology.kind(source)
        self.topology = topology
        self.routing = routing or UnicastRouting(topology)
        self.source = source
        self.receivers: Set[NodeId] = set()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def add_receiver(self, receiver: NodeId) -> None:
        """Join ``receiver`` to the conversation."""

    @abc.abstractmethod
    def remove_receiver(self, receiver: NodeId) -> None:
        """Remove ``receiver`` from the conversation."""

    def add_receivers(self, receivers) -> None:
        """Join several receivers (deterministic sorted order)."""
        for receiver in sorted(receivers):
            self.add_receiver(receiver)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def converge(self, max_rounds: int = 40) -> int:
        """Drive the control plane to a stable tree; returns the number
        of rounds/periods it took (0 for computed trees like PIM)."""

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def distribute_data(self) -> DataDistribution:
        """Send one data packet through the converged tree and record
        every link crossing and receiver delay."""

    # ------------------------------------------------------------------
    # Introspection (optional, default empty)
    # ------------------------------------------------------------------
    def branching_nodes(self) -> List[NodeId]:
        """Nodes that duplicate data packets (empty if not applicable)."""
        return []

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(source={self.source}, "
            f"receivers={len(self.receivers)})"
        )


ProtocolFactory = Callable[..., MulticastProtocol]

PROTOCOL_REGISTRY: Dict[str, ProtocolFactory] = {}


def register_protocol(name: str) -> Callable[[ProtocolFactory], ProtocolFactory]:
    """Class decorator registering a protocol under ``name``."""

    def decorator(factory: ProtocolFactory) -> ProtocolFactory:
        if name in PROTOCOL_REGISTRY:
            raise ExperimentError(f"protocol {name!r} already registered")
        PROTOCOL_REGISTRY[name] = factory
        factory.name = name
        return factory

    return decorator


def build_protocol(name: str, topology: Topology, source: NodeId,
                   routing: Optional[UnicastRouting] = None,
                   **kwargs) -> MulticastProtocol:
    """Instantiate a registered protocol by name."""
    # Importing the implementations registers them; deferred to avoid
    # circular imports at package-load time.
    import repro.protocols.reunite.protocol  # noqa: F401
    import repro.protocols.pim.protocol  # noqa: F401
    import repro.protocols.hbh_adapter  # noqa: F401
    import repro.protocols.mospf  # noqa: F401

    try:
        factory = PROTOCOL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(PROTOCOL_REGISTRY))
        raise ExperimentError(
            f"unknown protocol {name!r} (known: {known})"
        ) from None
    return factory(topology, source, routing=routing, **kwargs)
