"""The driver interface every multicast protocol implements.

A protocol driver owns one multicast conversation rooted at a source
node: receivers join/leave, the control plane converges, and
``distribute_data`` measures how one data packet spreads — producing the
:class:`~repro.metrics.distribution.DataDistribution` all metrics are
computed from.

A registry maps protocol names ("hbh", "reunite", "pim-sm", "pim-ss")
to factories so experiments can be configured by name, matching the
four curves of the paper's figures.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Dict, Hashable, List, Optional, Set

from repro.errors import ExperimentError
from repro.metrics.distribution import DataDistribution
from repro.obs.registry import MetricsRegistry, channel_label
from repro.routing.tables import UnicastRouting, shared_routing
from repro.topology.model import Topology

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.verify.state import SoftStateView

NodeId = Hashable

#: The shared metric names every protocol emits (identical across HBH,
#: REUNITE and the PIM baselines, so one registry compares all four).
#: Labels on each: ``protocol`` and ``channel`` (the ``<S,G>`` pair).
SHARED_METRICS = {
    "tree.cost.copies": "histogram",
    "tree.cost.weighted": "histogram",
    "delay.receiver": "histogram",
    "delay.mean": "histogram",
    "join.converge.rounds": "histogram",
    "control.messages": "counter",
    "data.deliveries": "counter",
    "data.missing": "counter",
    "group.size": "gauge",
}


class MulticastProtocol(abc.ABC):
    """One multicast conversation under one routing protocol."""

    #: Registry name, set by subclasses ("hbh", "reunite", ...).
    name: str = "abstract"

    def __init__(self, topology: Topology, source: NodeId,
                 routing: Optional[UnicastRouting] = None,
                 group: str = "G") -> None:
        topology.kind(source)
        self.topology = topology
        self.routing = routing or shared_routing(topology)
        self.source = source
        self.group = group
        self.receivers: Set[NodeId] = set()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def add_receiver(self, receiver: NodeId) -> None:
        """Join ``receiver`` to the conversation."""

    @abc.abstractmethod
    def remove_receiver(self, receiver: NodeId) -> None:
        """Remove ``receiver`` from the conversation."""

    def add_receivers(self, receivers) -> None:
        """Join several receivers (deterministic sorted order)."""
        for receiver in sorted(receivers):
            self.add_receiver(receiver)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def converge(self, max_rounds: int = 40) -> int:
        """Drive the control plane to a stable tree; returns the number
        of rounds/periods it took (0 for computed trees like PIM)."""

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def distribute_data(self) -> DataDistribution:
        """Send one data packet through the converged tree and record
        every link crossing and receiver delay."""

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def control_message_count(self) -> int:
        """Control messages processed so far by this conversation.

        Rule-driven protocols (HBH, REUNITE) report their rule-level
        message events; tree-computing baselines report the hop count
        of the join/prune walks that shaped their tree.  Used for the
        shared ``control.messages`` metric.
        """
        return 0

    def channel_id(self) -> str:
        """This conversation's ``<S,G>`` label value.  ``group``
        disambiguates the thousands of channels a churn workload runs
        off one source node."""
        return channel_label(self.source, self.group)

    def record_metrics(self, registry: MetricsRegistry,
                       distribution: DataDistribution,
                       converge_rounds: Optional[int] = None) -> None:
        """Emit the shared metric set (:data:`SHARED_METRICS`) for one
        measured data distribution.

        Every protocol goes through this one method, which is what
        guarantees apples-to-apples metric names across HBH, REUNITE
        and the PIM baselines.
        """
        labels = {"protocol": self.name, "channel": self.channel_id()}
        registry.observe("tree.cost.copies", float(distribution.copies),
                         **labels)
        registry.observe("tree.cost.weighted", distribution.weighted_cost,
                         **labels)
        for delay in distribution.delays.values():
            registry.observe("delay.receiver", delay, **labels)
        if distribution.delays:
            mean_delay = (sum(distribution.delays.values())
                          / len(distribution.delays))
            registry.observe("delay.mean", mean_delay, **labels)
        registry.inc("data.deliveries", float(len(distribution.delivered)),
                     **labels)
        registry.inc("data.missing", float(len(distribution.missing)),
                     **labels)
        registry.set_gauge("group.size", float(len(self.receivers)), **labels)
        registry.inc("control.messages", float(self.control_message_count()),
                     **labels)
        if converge_rounds is not None:
            registry.observe("join.converge.rounds", float(converge_rounds),
                             **labels)

    def record_flow(self, flow, distribution: DataDistribution,
                    t: float = 0.0, util: bool = True) -> None:
        """Digest one measured distribution into a
        :class:`~repro.obs.flow.FlowTelemetry` instrument: sampled flow
        records, per-link utilization and the per-channel SLO metrics.

        Like :meth:`record_metrics`, every protocol goes through this
        one method — the channel label, routing baselines (for path
        stretch and the concentration ratio) and source all come from
        the driver itself, so flow accounting stays apples-to-apples
        across HBH, REUNITE and the PIM baselines.  Callers on the
        event plane pass ``util=False`` when a live transmit tap
        already tallied the crossings.
        """
        if flow is None or not flow.enabled:
            return
        flow.observe_distribution(self.name, self.channel_id(),
                                  distribution, routing=self.routing,
                                  source=self.source, t=t, util=util)

    # ------------------------------------------------------------------
    # Causal tracing (optional, default unsupported)
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer, flight=None) -> bool:
        """Wire a :class:`~repro.obs.causal.CausalTracer` (and
        optionally a :class:`~repro.obs.flight.FlightRecorder`) into
        this conversation's control plane.  Returns whether the
        protocol supports tracing; the default does not.
        """
        return False

    def causal_tracer(self):
        """The attached causal tracer, or ``None``.  The convergence
        oracle uses this to explain violations."""
        return None

    # ------------------------------------------------------------------
    # Tree-dynamics timeline (optional, default unsupported)
    # ------------------------------------------------------------------
    def attach_timeline(self, timeline, monitor=None) -> bool:
        """Wire a :class:`~repro.obs.timeline.TreeTimeline` (and
        optionally a :class:`~repro.obs.timeline.ConvergenceMonitor`)
        into this conversation's control plane so membership changes
        and table mutations appear as timeline events.  Returns whether
        the protocol supports the timeline; the default does not.
        """
        return False

    def finish_timeline(self) -> None:
        """Settle the attached convergence monitor at the driver's
        current simulated time (no-op when unsupported/unattached)."""

    # ------------------------------------------------------------------
    # Introspection (optional, default empty)
    # ------------------------------------------------------------------
    def branching_nodes(self) -> List[NodeId]:
        """Nodes that duplicate data packets (empty if not applicable)."""
        return []

    def soft_state(self) -> Optional["SoftStateView"]:
        """Snapshot of every soft-state table entry for the
        convergence oracle's t2-hygiene check.

        ``None`` means "not applicable": protocols that compute their
        trees (the PIM baselines, MOSPF) hold no refresh-timed state
        that could go stale.
        """
        return None

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(source={self.source}, "
            f"receivers={len(self.receivers)})"
        )


ProtocolFactory = Callable[..., MulticastProtocol]

PROTOCOL_REGISTRY: Dict[str, ProtocolFactory] = {}


def register_protocol(name: str) -> Callable[[ProtocolFactory], ProtocolFactory]:
    """Class decorator registering a protocol under ``name``."""

    def decorator(factory: ProtocolFactory) -> ProtocolFactory:
        if name in PROTOCOL_REGISTRY:
            raise ExperimentError(f"protocol {name!r} already registered")
        PROTOCOL_REGISTRY[name] = factory
        factory.name = name
        return factory

    return decorator


def build_protocol(name: str, topology: Topology, source: NodeId,
                   routing: Optional[UnicastRouting] = None,
                   **kwargs) -> MulticastProtocol:
    """Instantiate a registered protocol by name."""
    # Importing the implementations registers them; deferred to avoid
    # circular imports at package-load time.
    import repro.protocols.reunite.protocol  # noqa: F401
    import repro.protocols.pim.protocol  # noqa: F401
    import repro.protocols.hbh_adapter  # noqa: F401
    import repro.protocols.mospf  # noqa: F401

    try:
        factory = PROTOCOL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(PROTOCOL_REGISTRY))
        raise ExperimentError(
            f"unknown protocol {name!r} (known: {known})"
        ) from None
    return factory(topology, source, routing=routing, **kwargs)
