"""MOSPF-style forward shortest-path trees (reference baseline).

The paper singles it out: "MOSPF - Multicast Open Shortest Path First
is the only Internet protocol that constructs SPTs" (Section 2.3) —
every router computes the source-rooted *forward* SPT from the
link-state database, so data reaches each receiver over the true
shortest path and each tree link carries one copy.

That makes MOSPF the ideal reference curve for HBH: the paper's claim
is that HBH achieves the same tree quality (forward SPT, minimal
copies) *without* requiring every router to run multicast — so at full
deployment the two curves should coincide, which
``tests/unit/pim/test_mospf.py`` and the cross-protocol property test
verify.  Like the PIM baselines (and NS's centralized multicast), the
tree is computed centrally rather than by simulating the LSA flooding;
the link-state substrate itself is exercised separately in
:mod:`repro.routing.link_state`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set

from repro.errors import ProtocolError
from repro.metrics.distribution import DataDistribution
from repro.protocols.base import MulticastProtocol, register_protocol
from repro.routing.tables import UnicastRouting, shared_routing
from repro.topology.model import Topology

NodeId = Hashable


class ForwardSpt:
    """A source-rooted forward SPT over the joined receivers.

    The dual of :class:`~repro.protocols.pim.trees.ReverseSpt`: each
    receiver's branch is the source's *forward* shortest path to it,
    so branches are grafted from the source side.
    """

    def __init__(self, topology: Topology, root: NodeId,
                 routing: Optional[UnicastRouting] = None) -> None:
        topology.kind(root)
        self.topology = topology
        self.routing = routing or shared_routing(topology)
        self.root = root
        #: node -> parent (toward the root) on the forward SPT.
        self._parent: Dict[NodeId, NodeId] = {}
        self.receivers: Set[NodeId] = set()

    def graft(self, receiver: NodeId) -> None:
        """Install the forward path root -> receiver."""
        if receiver == self.root:
            raise ProtocolError("the root cannot graft onto its own tree")
        self.receivers.add(receiver)
        path = self.routing.path(self.root, receiver)
        for parent, child in zip(path, path[1:]):
            self._parent[child] = parent

    def prune(self, receiver: NodeId) -> None:
        """Remove the receiver and any branch serving nobody else."""
        self.receivers.discard(receiver)
        needed: Set[NodeId] = set()
        for live in self.receivers:
            for node in self.routing.path(self.root, live)[1:]:
                needed.add(node)
        for node in list(self._parent):
            if node not in needed:
                del self._parent[node]

    def tree_links(self) -> List:
        """Directed data-plane links (parent -> child), sorted."""
        return sorted(
            (parent, child) for child, parent in self._parent.items()
        )

    def children(self) -> Dict[NodeId, List[NodeId]]:
        """parent -> sorted children."""
        result: Dict[NodeId, List[NodeId]] = {}
        for child, parent in self._parent.items():
            result.setdefault(parent, []).append(child)
        for siblings in result.values():
            siblings.sort()
        return result

    def distribute(self, distribution: DataDistribution) -> None:
        """One packet root->leaves, one copy per tree link."""
        delays: Dict[NodeId, float] = {self.root: 0.0}
        children = self.children()
        frontier = [self.root]
        while frontier:
            node = frontier.pop()
            for child in children.get(node, ()):
                cost = self.topology.cost(node, child)
                distribution.record_hop(node, child, cost)
                delays[child] = delays[node] + cost
                frontier.append(child)
        for receiver in self.receivers:
            distribution.record_delivery(receiver, delays[receiver])


@register_protocol("mospf")
class MospfProtocol(MulticastProtocol):
    """MOSPF baseline: the forward SPT every router would compute."""

    def __init__(self, topology: Topology, source: NodeId,
                 routing: Optional[UnicastRouting] = None,
                 group: str = "G") -> None:
        super().__init__(topology, source, routing, group=group)
        self.tree = ForwardSpt(topology, source, routing=self.routing)

    def add_receiver(self, receiver: NodeId) -> None:
        self.tree.graft(receiver)
        self.receivers.add(receiver)

    def remove_receiver(self, receiver: NodeId) -> None:
        self.tree.prune(receiver)
        self.receivers.discard(receiver)

    def converge(self, max_rounds: int = 40) -> int:
        """Centralized computation: already in place."""
        return 0

    def distribute_data(self) -> DataDistribution:
        distribution = DataDistribution(expected=set(self.receivers))
        self.tree.distribute(distribution)
        return distribution

    def branching_nodes(self) -> List[NodeId]:
        return sorted(node for node, kids in self.tree.children().items()
                      if len(kids) > 1)

    def soft_state(self):
        """Link-state computed tree: no refresh-timed state at all."""
        return None
