"""Address model: unicast addresses, class-D group addresses, channels.

The paper identifies a multicast channel by the pair ``<S, G>`` where
``S`` is the unicast address of the source and ``G`` is a class-D IP
address allocated by the source (EXPRESS channel model, Section 2.1).
REUNITE instead uses ``<S, P>`` with a source-allocated port ``P``; both
are represented here.

Addresses are modelled as IPv4 dotted quads backed by a 32-bit integer.
The library hands out addresses from two default pools:

- unicast node addresses from ``10.0.0.0/8`` (one per simulated node),
- class-D group addresses from ``232.0.0.0/8`` (the SSM range,
  fitting the paper's source-specific service model).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.errors import AddressError

_DOTTED_QUAD = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")

#: First address of the class-D (multicast) block, 224.0.0.0.
CLASS_D_FIRST = 224 << 24
#: One past the last class-D address (240.0.0.0 starts class E).
CLASS_D_LAST = 240 << 24
#: First address of the source-specific multicast range 232.0.0.0/8.
SSM_BLOCK_FIRST = 232 << 24


def _parse(text: str) -> int:
    """Parse a dotted quad into its 32-bit integer value."""
    match = _DOTTED_QUAD.match(text)
    if match is None:
        raise AddressError(f"not a dotted-quad address: {text!r}")
    value = 0
    for octet_text in match.groups():
        octet = int(octet_text)
        if octet > 255:
            raise AddressError(f"octet out of range in address: {text!r}")
        value = (value << 8) | octet
    return value


def _format(value: int) -> str:
    """Format a 32-bit integer as a dotted quad."""
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True, slots=True, order=True)
class Address:
    """A unicast IPv4-like address.

    Instances are immutable, hashable and totally ordered (by numeric
    value), so they can key routing tables and be stored in sets.
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < 2**32:
            raise AddressError(f"address value out of range: {self.value}")
        if CLASS_D_FIRST <= self.value < CLASS_D_LAST:
            raise AddressError(
                f"{_format(self.value)} is a class-D address; "
                "use GroupAddress for multicast groups"
            )

    @classmethod
    def parse(cls, text: str) -> "Address":
        """Build an address from dotted-quad notation, e.g. ``10.0.0.1``."""
        return cls(_parse(text))

    def __str__(self) -> str:
        return _format(self.value)

    def __repr__(self) -> str:
        return f"Address({str(self)!r})"


@dataclass(frozen=True, slots=True, order=True)
class GroupAddress:
    """A class-D (multicast) IPv4-like address."""

    value: int

    def __post_init__(self) -> None:
        if not CLASS_D_FIRST <= self.value < CLASS_D_LAST:
            raise AddressError(
                f"{_format(self.value)} is not a class-D address "
                "(must be in 224.0.0.0 - 239.255.255.255)"
            )

    @classmethod
    def parse(cls, text: str) -> "GroupAddress":
        """Build a group address from dotted-quad notation, e.g. ``232.1.0.1``."""
        return cls(_parse(text))

    @property
    def is_ssm(self) -> bool:
        """Whether the group lies in the source-specific 232/8 block."""
        return SSM_BLOCK_FIRST <= self.value < SSM_BLOCK_FIRST + (1 << 24)

    def __str__(self) -> str:
        return _format(self.value)

    def __repr__(self) -> str:
        return f"GroupAddress({str(self)!r})"


@dataclass(frozen=True, slots=True, order=True)
class Channel:
    """An HBH/EXPRESS multicast channel ``<S, G>``.

    ``source`` is the unicast address of the (single) source and
    ``group`` a class-D address allocated by that source.  The
    concatenation is globally unique because the unicast address is
    (paper Section 2.1).
    """

    source: Address
    group: GroupAddress

    def __str__(self) -> str:
        return f"<{self.source}, {self.group}>"


@dataclass(frozen=True, slots=True, order=True)
class ReuniteChannel:
    """A REUNITE conversation ``<S, P>`` (source address + port).

    REUNITE abandons class-D addressing entirely; the port ``P`` is
    allocated by the source (paper Section 2.1).
    """

    source: Address
    port: int

    def __post_init__(self) -> None:
        if not 0 < self.port < 2**16:
            raise AddressError(f"port out of range: {self.port}")

    def __str__(self) -> str:
        return f"<{self.source}, {self.port}>"


class AddressAllocator:
    """Sequential allocator for unicast and group addresses.

    One allocator per simulated network keeps node addresses unique.
    Unicast addresses come from ``base_unicast`` (default ``10.0.0.1``),
    group addresses from the SSM block (default ``232.1.0.1``).
    """

    def __init__(
        self,
        base_unicast: str = "10.0.0.1",
        base_group: str = "232.1.0.1",
    ) -> None:
        self._next_unicast = _parse(base_unicast)
        self._next_group = _parse(base_group)

    def next_unicast(self) -> Address:
        """Allocate the next unicast address."""
        address = Address(self._next_unicast)
        self._next_unicast += 1
        return address

    def next_group(self) -> GroupAddress:
        """Allocate the next class-D group address."""
        group = GroupAddress(self._next_group)
        self._next_group += 1
        return group

    def unicast_range(self, count: int) -> Iterator[Address]:
        """Allocate ``count`` consecutive unicast addresses."""
        for _ in range(count):
            yield self.next_unicast()
