"""The one owner of membership state: a counted (group, member) ledger.

Before this module, membership truth lived in two places: the IGMP
router agent's ``{channel: {host: last_seen}}`` database and whatever
ad-hoc receiver sets each experiment kept.  The churn engine makes that
untenable — aggregated populations (one sim receiver standing for N
hosts) and overlapping sessions at one site need *counted* state, and
the protocol drivers only care about the edges (a site's first session,
a site's last).  :class:`MembershipLedger` is that single owner:

- **counted sessions** (:meth:`add` / :meth:`remove`) for churn replay:
  each call is one session; the boolean return is the protocol-visible
  edge (member appeared / member vanished);
- **presence** (:meth:`report` / :meth:`withdraw` / :meth:`expire`) for
  IGMP: idempotent refreshes with soft-state timeout, exactly the
  querier semantics :class:`repro.igmp.membership.IgmpRouterAgent` now
  delegates here.

Both styles coexist in one ledger because they are the same table —
a presence report is a session count clamped to one.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.errors import MembershipError

Group = Hashable
Member = Hashable


class _Entry:
    """One (group, member) row: live session count, host weight, and
    the last refresh time (presence-style expiry)."""

    __slots__ = ("sessions", "hosts", "last_seen")

    def __init__(self, sessions: int, hosts: int, last_seen: float) -> None:
        self.sessions = sessions
        self.hosts = hosts
        self.last_seen = last_seen


class MembershipLedger:
    """Counted membership with first/last-member edge detection."""

    def __init__(self) -> None:
        self._groups: Dict[Group, Dict[Member, _Entry]] = {}

    # ------------------------------------------------------------------
    # Counted sessions (churn replay)
    # ------------------------------------------------------------------
    def add(self, group: Group, member: Member, hosts: int = 1,
            now: float = 0.0) -> bool:
        """One session joins; returns True when this is the member's
        *first* live session in the group (the protocol-visible join
        edge — an already-listening site absorbs the session)."""
        members = self._groups.setdefault(group, {})
        entry = members.get(member)
        if entry is None:
            members[member] = _Entry(1, hosts, now)
            return True
        entry.sessions += 1
        entry.hosts += hosts
        entry.last_seen = now
        return False

    def remove(self, group: Group, member: Member, hosts: int = 1) -> bool:
        """One session leaves; returns True when it was the member's
        *last* live session (the protocol-visible leave edge).  A leave
        with no matching join is a generator/driver bug and raises."""
        members = self._groups.get(group)
        entry = members.get(member) if members is not None else None
        if entry is None:
            raise MembershipError(
                f"leave without membership: {member!r} in {group!r}"
            )
        entry.sessions -= 1
        entry.hosts -= hosts
        if entry.sessions > 0:
            return False
        del members[member]
        if not members:
            del self._groups[group]
        return True

    # ------------------------------------------------------------------
    # Presence (IGMP querier)
    # ------------------------------------------------------------------
    def report(self, group: Group, member: Member, now: float) -> bool:
        """Idempotent presence refresh (an IGMP membership report);
        returns True when the member was newly present."""
        members = self._groups.setdefault(group, {})
        entry = members.get(member)
        if entry is None:
            members[member] = _Entry(1, 1, now)
            return True
        entry.last_seen = now
        return False

    def withdraw(self, group: Group, member: Member) -> bool:
        """Remove a member's presence entirely (an explicit leave
        report); returns True when the member was present."""
        members = self._groups.get(group)
        if members is None or member not in members:
            return False
        del members[member]
        if not members:
            del self._groups[group]
        return True

    def expire(self, now: float, horizon: float) -> List[Group]:
        """Drop members not refreshed within ``horizon``; returns the
        groups that emptied, in deterministic (sorted) order."""
        emptied: List[Group] = []
        for group in list(self._groups):
            members = self._groups[group]
            for member, entry in list(members.items()):
                if now - entry.last_seen > horizon:
                    del members[member]
            if not members:
                del self._groups[group]
                emptied.append(group)
        return sorted(emptied, key=str)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def has_members(self, group: Group) -> bool:
        """Whether any member is live in ``group``."""
        return bool(self._groups.get(group))

    def member_hosts(self, group: Group) -> List[Member]:
        """Sorted live members of ``group``."""
        return sorted(self._groups.get(group, ()))

    def sessions(self, group: Group) -> int:
        """Live session count across all of ``group``'s members."""
        members = self._groups.get(group)
        if not members:
            return 0
        return sum(entry.sessions for entry in members.values())

    def weight(self, group: Group) -> int:
        """Aggregated host weight across all of ``group``'s members."""
        members = self._groups.get(group)
        if not members:
            return 0
        return sum(entry.hosts for entry in members.values())

    def groups(self) -> List[Group]:
        """Sorted groups with at least one live member."""
        return sorted(self._groups, key=str)

    def presence(self) -> Dict[Group, Dict[Member, float]]:
        """The presence view (``{group: {member: last_seen}}``) the old
        IGMP database exposed — kept for introspection/debugging."""
        return {
            group: {member: entry.last_seen
                    for member, entry in members.items()}
            for group, members in self._groups.items()
        }

    def totals(self) -> Tuple[int, int, int]:
        """(groups, live sessions, aggregated hosts) across the ledger."""
        sessions = hosts = 0
        for members in self._groups.values():
            for entry in members.values():
                sessions += entry.sessions
                hosts += entry.hosts
        return (len(self._groups), sessions, hosts)

    def __len__(self) -> int:
        return len(self._groups)

    def __repr__(self) -> str:
        groups, sessions, hosts = self.totals()
        return (f"MembershipLedger(groups={groups}, sessions={sessions}, "
                f"hosts={hosts})")
