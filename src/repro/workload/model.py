"""Composable churn models: what a mass-membership audience looks like.

A :class:`ChurnModel` describes the *statistics* of a workload — how
fast sessions arrive over time, which of the thousands of channels each
one picks, how long it stays, and which correlated mass-departures hit
it — without materialising a single event.  The lazy event stream is
:class:`repro.workload.schedule.ChurnSchedule`'s job; everything here
is pure arithmetic so the model is trivially picklable across sweep
workers and hashable into cell keys.

The shapes mirror the workloads the multicast-retrospective literature
argues these protocols must be evaluated under (Trossen & Crowcroft,
PAPERS.md): Zipf channel popularity (a few head channels carry most of
the audience), diurnal load curves (prime time vs. night), flash
crowds (a goal is scored) and correlated regional departures (an
access network browns out).
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass, field
from typing import Hashable, Optional, Tuple

from repro.errors import ExperimentError

NodeId = Hashable

#: Sessions shorter than this are clamped up: a zero-length session
#: would emit its leave at the join instant and mean nothing.
MIN_SESSION = 1e-3


class WorkloadError(ExperimentError):
    """An ill-formed churn model (bad rates, empty site sets...)."""


@dataclass(frozen=True)
class DiurnalCurve:
    """A smooth daily load curve: the rate multiplier swings between
    ``trough`` and ``peak`` with period ``period``, peaking at
    ``peak_time`` (cosine-shaped, like the classic IPTV prime-time
    curve)."""

    peak: float = 1.5
    trough: float = 0.5
    period: float = 86_400.0
    peak_time: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise WorkloadError(f"diurnal period must be > 0: {self!r}")
        if not 0 < self.trough <= self.peak:
            raise WorkloadError(
                f"diurnal needs 0 < trough <= peak: {self!r}"
            )

    def multiplier(self, t: float) -> float:
        """The load multiplier at time ``t`` (in [trough, peak])."""
        phase = 0.5 * (1.0 + math.cos(
            2.0 * math.pi * (t - self.peak_time) / self.period))
        return self.trough + (self.peak - self.trough) * phase


@dataclass(frozen=True)
class FlashCrowd:
    """A transient arrival spike: nothing before ``time``, a linear
    ramp to ``magnitude`` extra load over ``rise``, then exponential
    decay with time constant ``decay`` — the goal-is-scored shape."""

    time: float
    magnitude: float = 4.0
    rise: float = 30.0
    decay: float = 300.0

    def __post_init__(self) -> None:
        if self.time < 0 or self.magnitude <= 0 or self.rise <= 0 \
                or self.decay <= 0:
            raise WorkloadError(f"bad flash crowd: {self!r}")

    def boost(self, t: float) -> float:
        """Additive rate multiplier contributed at time ``t``."""
        if t < self.time:
            return 0.0
        elapsed = t - self.time
        if elapsed < self.rise:
            return self.magnitude * elapsed / self.rise
        return self.magnitude * math.exp(-(elapsed - self.rise) / self.decay)


@dataclass(frozen=True)
class RegionalDeparture:
    """A correlated mass-leave: at ``time``, every session active at a
    site in ``sites`` departs immediately with probability
    ``fraction`` — an access network going dark mid-broadcast."""

    time: float
    sites: Tuple[NodeId, ...]
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0 or not self.sites or not 0 < self.fraction <= 1:
            raise WorkloadError(f"bad regional departure: {self!r}")


@dataclass(frozen=True)
class SessionDuration:
    """How long one session lasts.

    ``kind`` picks the distribution — ``"exponential"`` (mean
    ``scale``), ``"lognormal"`` (median ``scale``, sigma ``shape``),
    ``"pareto"`` (scale ``scale``, tail index ``shape``) or ``"fixed"``
    — and every sample is clamped into ``[MIN_SESSION, cap]``.  The cap
    is what bounds the schedule generator's memory: no session outlives
    ``cap``, so at most ``rate * cap`` leaves are ever pending.
    """

    kind: str = "exponential"
    scale: float = 120.0
    shape: float = 1.5
    cap: float = 3_600.0

    KINDS = ("exponential", "lognormal", "pareto", "fixed")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise WorkloadError(
                f"unknown session kind {self.kind!r} "
                f"(known: {', '.join(self.KINDS)})"
            )
        if self.scale <= 0 or self.shape <= 0 or self.cap < MIN_SESSION:
            raise WorkloadError(f"bad session duration: {self!r}")

    def sample(self, rng: random.Random) -> float:
        """One session length, clamped into ``[MIN_SESSION, cap]``."""
        if self.kind == "fixed":
            value = self.scale
        elif self.kind == "exponential":
            value = rng.expovariate(1.0 / self.scale)
        elif self.kind == "lognormal":
            value = rng.lognormvariate(math.log(self.scale), self.shape)
        else:  # pareto
            value = self.scale * rng.paretovariate(self.shape)
        return min(max(value, MIN_SESSION), self.cap)


class ZipfPopularity:
    """Zipf channel popularity over ``channels`` ranked channels:
    channel ``i`` (0-based; 0 is the head) has weight
    ``1 / (i + 1) ** exponent``.  Sampling inverts the precomputed CDF
    with one uniform draw and a bisect, so a million draws cost a
    million log-time lookups, not a million renormalisations."""

    def __init__(self, channels: int, exponent: float = 1.0) -> None:
        if channels < 1:
            raise WorkloadError(f"need >= 1 channel, got {channels}")
        if exponent < 0:
            raise WorkloadError(f"Zipf exponent must be >= 0: {exponent}")
        self.channels = channels
        self.exponent = exponent
        weights = [1.0 / (rank + 1) ** exponent for rank in range(channels)]
        total = math.fsum(weights)
        cdf = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cdf.append(running)
        cdf[-1] = 1.0  # guard against float drift at the top
        self._cdf = cdf

    def sample(self, rng: random.Random) -> int:
        """Draw one channel index (0 = most popular)."""
        return bisect.bisect_left(self._cdf, rng.random())

    def share(self, channel: int) -> float:
        """The probability mass of one channel index."""
        low = self._cdf[channel - 1] if channel else 0.0
        return self._cdf[channel] - low

    def __repr__(self) -> str:
        return (f"ZipfPopularity(channels={self.channels}, "
                f"exponent={self.exponent:g})")


@dataclass(frozen=True)
class ChurnModel:
    """The full workload description one schedule generates from.

    ``base_rate`` is the Poisson session-arrival rate (joins/sec across
    *all* channels) at multiplier 1; the diurnal curve scales it
    multiplicatively and each flash crowd adds its boost on top.
    ``host_scale`` is the aggregation factor: one generated session
    stands for that many end hosts behind the site (the event's
    ``hosts`` weight), which is how a thousand sim receivers stand in
    for millions of endpoints without a million events per join.
    """

    channels: int
    base_rate: float
    popularity_exponent: float = 1.0
    session: SessionDuration = field(default_factory=SessionDuration)
    diurnal: Optional[DiurnalCurve] = None
    flash_crowds: Tuple[FlashCrowd, ...] = ()
    departures: Tuple[RegionalDeparture, ...] = ()
    host_scale: int = 1

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise WorkloadError(f"need >= 1 channel, got {self.channels}")
        if self.base_rate <= 0:
            raise WorkloadError(f"base rate must be > 0: {self.base_rate}")
        if self.popularity_exponent < 0:
            raise WorkloadError(
                f"Zipf exponent must be >= 0: {self.popularity_exponent}"
            )
        if self.host_scale < 1:
            raise WorkloadError(f"host scale must be >= 1: {self.host_scale}")

    def rate(self, t: float) -> float:
        """The instantaneous session-arrival rate at time ``t``."""
        rate = self.base_rate
        if self.diurnal is not None:
            rate *= self.diurnal.multiplier(t)
        boost = 0.0
        for crowd in self.flash_crowds:
            boost += crowd.boost(t)
        return rate * (1.0 + boost)

    def peak_rate(self) -> float:
        """An upper bound on :meth:`rate` over all time — the thinning
        envelope the schedule generator draws candidate arrivals at."""
        rate = self.base_rate
        if self.diurnal is not None:
            rate *= self.diurnal.peak
        boost = sum(crowd.magnitude for crowd in self.flash_crowds)
        return rate * (1.0 + boost)

    def popularity(self) -> ZipfPopularity:
        """The channel-popularity sampler (precomputed CDF)."""
        return ZipfPopularity(self.channels, self.popularity_exponent)

    def describe(self) -> str:
        """One deterministic line per component (reports, archives)."""
        lines = [
            f"ChurnModel: {self.channels} channels, "
            f"base rate {self.base_rate:g}/s, "
            f"Zipf s={self.popularity_exponent:g}, "
            f"session {self.session.kind} scale={self.session.scale:g} "
            f"cap={self.session.cap:g}, host scale {self.host_scale}",
        ]
        if self.diurnal is not None:
            d = self.diurnal
            lines.append(f"  diurnal: x{d.trough:g}..x{d.peak:g} "
                         f"period={d.period:g} peak at t={d.peak_time:g}")
        for crowd in self.flash_crowds:
            lines.append(f"  flash crowd: t={crowd.time:g} "
                         f"+x{crowd.magnitude:g} rise={crowd.rise:g} "
                         f"decay={crowd.decay:g}")
        for departure in self.departures:
            lines.append(f"  regional departure: t={departure.time:g} "
                         f"{len(departure.sites)} sites "
                         f"fraction={departure.fraction:g}")
        return "\n".join(lines)
