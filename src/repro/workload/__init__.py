"""Seed-reproducible mass-membership workloads (the churn engine).

The paper's stability analysis (§3.3) studies a single receiver
departure; the workloads this package generates are the other extreme —
IPTV- and live-event-shaped mass churn across thousands of ``<S,G>``
channels, the regime the ROADMAP's production north-star cares about:

- :mod:`repro.workload.model` — composable arrival processes
  (:class:`ChurnModel`): Poisson base rate, diurnal load curves,
  flash-crowd spikes, correlated regional departures, Zipf channel
  popularity and configurable session-duration distributions;
- :mod:`repro.workload.schedule` — :class:`ChurnSchedule`, a lazy
  streaming iterator of timestamped join/leave events (millions of
  events in O(active sessions) memory), deterministic under string
  seeding and mergeable with :class:`~repro.netsim.faults.FaultSchedule`;
- :mod:`repro.workload.membership` — :class:`MembershipLedger`, the one
  owner of counted membership state (IGMP presence and aggregated churn
  populations share it);
- :mod:`repro.workload.driver` — replayers for both planes:
  :class:`RoundChurnPlayer` for the static drivers and
  :class:`ChurnInjector` for the event engine.

The ``experiments churn`` CLI target drives all of it through the
parallel sweep executor; see :mod:`repro.experiments.churn`.
"""

from repro.workload.membership import MembershipLedger
from repro.workload.model import (
    ChurnModel,
    DiurnalCurve,
    FlashCrowd,
    RegionalDeparture,
    SessionDuration,
    ZipfPopularity,
)
from repro.workload.schedule import JOIN, LEAVE, ChurnSchedule, MembershipEvent
from repro.workload.driver import ChurnInjector, RoundChurnPlayer

__all__ = [
    "ChurnInjector",
    "ChurnModel",
    "ChurnSchedule",
    "DiurnalCurve",
    "FlashCrowd",
    "JOIN",
    "LEAVE",
    "MembershipEvent",
    "MembershipLedger",
    "RegionalDeparture",
    "RoundChurnPlayer",
    "SessionDuration",
    "ZipfPopularity",
]
