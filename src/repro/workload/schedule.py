"""The lazy churn stream: millions of membership events, O(1) memory.

A :class:`ChurnSchedule` turns a :class:`~repro.workload.model.ChurnModel`
into a deterministic, *streaming* sequence of timestamped
:class:`MembershipEvent` join/leave pairs.  Nothing is materialised:
the generator walks fixed-width time slots, draws each slot's arrivals
from a slot-keyed ``random.Random`` (string-seeded, so the stream is
identical under any ``PYTHONHASHSEED``), and parks each session's
future leave in a rolling per-slot bucket.  Peak memory is the number
of *concurrently active* sessions (bounded by ``rate * session.cap``),
independent of how many events are consumed — a 1M-event stream and a
1B-event stream hold the same state.

Determinism contract (the Hypothesis suite pins all of it):

- the global stream is a pure function of ``(model, sites, seed, slot)``;
- ``events(channels=...)`` filters *after* generation, so any sharding
  of the channel space yields streams whose union is exactly the
  unfiltered stream — the property the parallel churn sweep's
  byte-identical archives rest on;
- ``events(start=...)`` replays generation from t=0 and drops the
  prefix, so slicing equals filtering the full stream (resume without
  checkpoint state);
- events carry a global ``seq`` (the join draw order; a leave inherits
  its join's seq), and simultaneous events order as
  ``(time, join-before-leave, seq)``.

Arrival thinning: candidates are drawn as a homogeneous Poisson
process at the model's :meth:`~repro.workload.model.ChurnModel.peak_rate`
envelope and accepted with probability ``rate(t) / peak_rate`` — the
standard construction for a time-varying (diurnal + flash-crowd) rate
that keeps every draw attributable to one slot's RNG.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
)

from repro.workload.model import ChurnModel, WorkloadError

NodeId = Hashable

#: Event kinds (module constants so drivers dispatch on identity).
JOIN = "join"
LEAVE = "leave"

#: Default slot width (seconds of model time).  Purely an internal
#: batching granularity: the stream's *content* is slot-width dependent
#: (each slot owns an RNG), so ``slot`` is part of the schedule
#: identity, like ``seed``.
DEFAULT_SLOT = 64.0


@dataclass(frozen=True, slots=True)
class MembershipEvent:
    """One timestamped membership change.

    ``channel`` is the model's popularity rank (0 = head channel);
    ``site`` the receiver node joining or leaving; ``hosts`` the
    aggregation weight (this one sim receiver stands for that many end
    hosts); ``seq`` the global join-draw index shared by a session's
    join and leave.  Carries ``time``/``kind`` like the fault-plane
    events, so :func:`repro.netsim.faults.merge_timelines` composes the
    two streams without adapters.
    """

    time: float
    kind: str
    channel: int
    site: NodeId
    hosts: int
    seq: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible projection (one JSONL line, sorted keys)."""
        return {
            "time": self.time,
            "kind": self.kind,
            "channel": self.channel,
            "site": self.site if isinstance(
                self.site, (str, int, float, bool)) else repr(self.site),
            "hosts": self.hosts,
            "seq": self.seq,
        }


class ChurnSchedule:
    """A deterministic lazy stream of membership events.

    ``sites`` are the candidate receiver nodes (each arrival picks one
    uniformly); they are sorted once so the stream does not depend on
    the caller's ordering.  ``seed`` keys every random draw through
    string-seeded ``random.Random`` instances — stable across
    processes, platforms and ``PYTHONHASHSEED``.
    """

    def __init__(self, model: ChurnModel, sites: Sequence[NodeId],
                 seed: int = 0, name: str = "",
                 slot: float = DEFAULT_SLOT) -> None:
        if not sites:
            raise WorkloadError("churn schedule needs at least one site")
        if slot <= 0:
            raise WorkloadError(f"slot width must be > 0: {slot}")
        self.model = model
        self.sites = tuple(sorted(sites, key=str))
        self.seed = seed
        self.name = name
        self.slot = slot
        site_set = set(self.sites)
        for departure in model.departures:
            unknown = [s for s in departure.sites if s not in site_set]
            if unknown:
                raise WorkloadError(
                    f"regional departure references unknown sites "
                    f"{sorted(map(str, unknown))}"
                )

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def events(self, limit: Optional[int] = None,
               channels: Optional[Iterable[int]] = None,
               start: float = 0.0) -> Iterator[MembershipEvent]:
        """The event stream, lazily.

        ``limit`` bounds the *global* stream (counted before channel
        filtering, so shards of one limited stream always partition it
        exactly); ``channels`` keeps only those channel indices;
        ``start`` drops events before that time (generation still
        replays from t=0, so a sliced stream is byte-identical to the
        same slice of the full one).
        """
        stream: Iterator[MembershipEvent] = self._generate()
        if limit is not None:
            stream = itertools.islice(stream, limit)
        wanted = frozenset(channels) if channels is not None else None
        for event in stream:
            if event.time < start:
                continue
            if wanted is not None and event.channel not in wanted:
                continue
            yield event

    def _generate(self) -> Iterator[MembershipEvent]:
        """The unbounded global stream (see module docstring for the
        slot/bucket construction)."""
        model = self.model
        sites = self.sites
        n_sites = len(sites)
        popularity = model.popularity()
        session = model.session
        hosts = model.host_scale
        peak = model.peak_rate()
        rate = model.rate
        slot = self.slot
        seed = self.seed
        #: leave-slot index -> [leave_time, join_time, channel, site, seq]
        pending: Dict[int, List[list]] = {}
        departures = sorted(enumerate(model.departures),
                            key=lambda pair: (pair[1].time, pair[0]))
        next_departure = 0
        seq = 0
        k = 0
        while True:
            slot_start = k * slot
            slot_end = slot_start + slot
            rng = random.Random(f"{seed}/churn/{k}")
            joins: List[MembershipEvent] = []
            t = slot_start
            while True:
                t += rng.expovariate(peak)
                if t >= slot_end:
                    break
                if rng.random() * peak > rate(t):
                    continue  # thinned away (off-peak instant)
                channel = popularity.sample(rng)
                site = sites[rng.randrange(n_sites)]
                duration = session.sample(rng)
                joins.append(MembershipEvent(
                    time=t, kind=JOIN, channel=channel, site=site,
                    hosts=hosts, seq=seq,
                ))
                leave_time = t + duration
                pending.setdefault(int(leave_time // slot), []).append(
                    [leave_time, t, channel, site, seq])
                seq += 1
            # Correlated regional departures triggering inside this
            # slot: every session active at the trigger (joined before,
            # leaving after) at a region site departs early with the
            # departure's probability.  The walk order (buckets by
            # index, entries in insertion order) and the departure's
            # own string-seeded RNG make the retiming deterministic.
            while (next_departure < len(departures)
                   and departures[next_departure][1].time < slot_end):
                index, departure = departures[next_departure]
                next_departure += 1
                dep_rng = random.Random(f"{seed}/departure/{index}")
                region = frozenset(departure.sites)
                trigger = departure.time
                moved: List[list] = []
                for bucket_key in sorted(pending):
                    if (bucket_key + 1) * slot <= trigger:
                        continue  # bucket ends before the trigger
                    kept: List[list] = []
                    for entry in pending[bucket_key]:
                        leave_time, join_time, _channel, site, _seq = entry
                        if (join_time <= trigger < leave_time
                                and site in region
                                and dep_rng.random() < departure.fraction):
                            entry[0] = trigger
                            moved.append(entry)
                        else:
                            kept.append(entry)
                    pending[bucket_key] = kept
                if moved:
                    pending.setdefault(int(trigger // slot), []).extend(moved)
            leaves = [
                MembershipEvent(time=entry[0], kind=LEAVE, channel=entry[2],
                                site=entry[3], hosts=hosts, seq=entry[4])
                for entry in pending.pop(k, ())
            ]
            merged = joins + leaves
            merged.sort(key=_event_order)
            yield from merged
            k += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def active_sessions(self) -> int:
        """Never materialised — provided on the *events*, not here; the
        ledger (:class:`repro.workload.membership.MembershipLedger`)
        tracks live occupancy during replay."""
        raise WorkloadError(
            "a ChurnSchedule is a stream, not a state; replay it through "
            "a MembershipLedger to track occupancy"
        )

    def describe(self) -> str:
        """Deterministic header for reports and archives."""
        return (
            f"ChurnSchedule {self.name or '(unnamed)'} "
            f"(seed={self.seed}, slot={self.slot:g}, "
            f"{len(self.sites)} sites)\n" + self.model.describe()
        )

    def __repr__(self) -> str:
        return (f"ChurnSchedule({self.name!r}, seed={self.seed}, "
                f"channels={self.model.channels}, sites={len(self.sites)})")


def _event_order(event: MembershipEvent):
    """Total order for simultaneous events: joins before leaves, then
    the global join-draw sequence."""
    return (event.time, 0 if event.kind == JOIN else 1, event.seq)


def write_stream_jsonl(events: Iterable[MembershipEvent], target) -> int:
    """Archive events as sorted-key JSON lines (golden-prefix files and
    ``--stream-out``); returns the count written."""
    import json
    from pathlib import Path

    lines = [json.dumps(event.to_dict(), sort_keys=True) for event in events]
    text = "\n".join(lines) + ("\n" if lines else "")
    if hasattr(target, "write"):
        target.write(text)
    else:
        Path(target).write_text(text)
    return len(lines)
