"""Churn replayers for both planes.

Two consumers turn a (possibly fault-merged) event stream into live
protocol activity, the same split the fault plane uses:

- :class:`RoundChurnPlayer` advances a cursor over the stream at round
  granularity for the static drivers, holding at most one pending
  event in memory (the stream stays lazy end to end);
- :class:`ChurnInjector` pumps the stream through a
  :class:`~repro.netsim.engine.Simulator` one event at a time for the
  event-driven plane.

Both own a :class:`~repro.workload.membership.MembershipLedger` and
only surface the *edges* to the protocol callbacks: a site's first
live session fires ``on_first`` (join the protocol receiver), its last
fires ``on_last`` (leave).  Everything in between — overlapping
sessions, aggregated populations — is absorbed by the ledger and
counted in the registry:

- ``churn.events.join`` / ``churn.events.leave`` — stream events seen,
- ``churn.hosts.join`` / ``churn.hosts.leave`` — host-weighted volume,
- ``churn.edges.join`` / ``churn.edges.leave`` — protocol-visible edges.

Fault events encountered in a merged stream (see
:meth:`repro.netsim.faults.FaultSchedule.merge`) are handed to the
fault plane's own replayers in stream order, so ordering is defined in
exactly one place.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.netsim.faults import FaultInjector, RoundFaultPlayer
from repro.obs.registry import MetricsRegistry
from repro.workload.membership import MembershipLedger
from repro.workload.schedule import JOIN, LEAVE, MembershipEvent

EdgeCallback = Callable[[MembershipEvent], None]


class RoundChurnPlayer:
    """Replays a churn stream against round-driven (static) protocols.

    ``advance(now)`` applies every event with ``time <= now`` — the
    same cursor contract as :class:`~repro.netsim.faults.RoundFaultPlayer`.
    Fault events in a merged stream are forwarded to ``fault_player``
    (its own cursor is advanced to the event's time, which applies that
    fault and any it was tied with); membership events go through the
    ledger and surface edges via ``on_first`` / ``on_last``.
    """

    def __init__(self, stream: Iterable, *,
                 on_first: Optional[EdgeCallback] = None,
                 on_last: Optional[EdgeCallback] = None,
                 fault_player: Optional[RoundFaultPlayer] = None,
                 registry: Optional[MetricsRegistry] = None,
                 ledger: Optional[MembershipLedger] = None,
                 labels: Optional[dict] = None) -> None:
        self._stream: Iterator = iter(stream)
        self._pending = None
        self.on_first = on_first
        self.on_last = on_last
        self.fault_player = fault_player
        self.registry = registry
        self.ledger = ledger if ledger is not None else MembershipLedger()
        self.labels = dict(labels or {})
        self.exhausted = False
        self.events_applied = 0
        self.faults_seen = 0

    def advance(self, now: float) -> int:
        """Apply every not-yet-applied event with ``time <= now``;
        returns how many were applied."""
        applied = 0
        event = self._pending
        self._pending = None
        while True:
            if event is None:
                event = next(self._stream, None)
                if event is None:
                    self.exhausted = True
                    break
            if event.time > now:
                self._pending = event
                break
            self._apply(event)
            applied += 1
            event = None
        self.events_applied += applied
        return applied

    def finish(self) -> int:
        """Apply everything left, regardless of time."""
        return self.advance(float("inf"))

    # ------------------------------------------------------------------
    def _apply(self, event) -> None:
        kind = event.kind
        if kind == JOIN:
            self._count("churn.events.join", 1)
            self._count("churn.hosts.join", event.hosts)
            if self.ledger.add(event.channel, event.site,
                               hosts=event.hosts, now=event.time):
                self._count("churn.edges.join", 1)
                if self.on_first is not None:
                    self.on_first(event)
        elif kind == LEAVE:
            self._count("churn.events.leave", 1)
            self._count("churn.hosts.leave", event.hosts)
            if self.ledger.remove(event.channel, event.site,
                                  hosts=event.hosts):
                self._count("churn.edges.leave", 1)
                if self.on_last is not None:
                    self.on_last(event)
        else:
            # A fault event from a merged timeline: same-time ordering
            # is the merge's contract (faults sort before churn), and
            # advancing the fault player's own cursor to this time
            # preserves it.
            self.faults_seen += 1
            if self.fault_player is not None:
                self.fault_player.advance(event.time)
            else:
                self._count(f"churn.faults.ignored.{kind}", 1)

    def _count(self, name: str, value: float) -> None:
        if self.registry is not None:
            self.registry.inc(name, float(value), **self.labels)

    def __repr__(self) -> str:
        return (f"RoundChurnPlayer(applied={self.events_applied}, "
                f"exhausted={self.exhausted}, ledger={self.ledger!r})")


class ChurnInjector:
    """Pumps a churn stream through the event engine, lazily.

    One pending simulator callback exists at any moment: firing an
    event applies it and schedules the next, so a million-event stream
    never sits in the event queue.  Membership edges fire ``on_first``
    / ``on_last`` (typically :meth:`~repro.core.protocol.HbhChannel.join`
    / ``leave`` or IGMP host joins); fault events are applied through
    ``fault_injector`` (a :class:`~repro.netsim.faults.FaultInjector`
    armed on the same network) at their merged position.
    """

    def __init__(self, network, stream: Iterable, *,
                 on_first: Optional[EdgeCallback] = None,
                 on_last: Optional[EdgeCallback] = None,
                 fault_injector: Optional[FaultInjector] = None,
                 registry: Optional[MetricsRegistry] = None,
                 ledger: Optional[MembershipLedger] = None,
                 time_offset: float = 0.0,
                 labels: Optional[dict] = None) -> None:
        self.network = network
        self._stream: Iterator = iter(stream)
        self.on_first = on_first
        self.on_last = on_last
        self.fault_injector = fault_injector
        self.registry = registry if registry is not None else network.metrics
        self.ledger = ledger if ledger is not None else MembershipLedger()
        self.time_offset = time_offset
        self.labels = dict(labels or {})
        self.events_applied = 0
        self.exhausted = False

    def arm(self) -> bool:
        """Schedule the first event; returns False for an empty stream."""
        return self._schedule_next()

    def _schedule_next(self) -> bool:
        event = next(self._stream, None)
        if event is None:
            self.exhausted = True
            return False
        self.network.simulator.schedule_at(
            self.time_offset + event.time, self._fire, event
        )
        return True

    def _fire(self, event) -> None:
        kind = event.kind
        if kind == JOIN:
            self._count("churn.events.join", 1)
            self._count("churn.hosts.join", event.hosts)
            if self.ledger.add(event.channel, event.site,
                               hosts=event.hosts, now=event.time):
                self._count("churn.edges.join", 1)
                if self.on_first is not None:
                    self.on_first(event)
        elif kind == LEAVE:
            self._count("churn.events.leave", 1)
            self._count("churn.hosts.leave", event.hosts)
            if self.ledger.remove(event.channel, event.site,
                                  hosts=event.hosts):
                self._count("churn.edges.leave", 1)
                if self.on_last is not None:
                    self.on_last(event)
        elif self.fault_injector is not None:
            self.fault_injector._apply(event)
        else:
            self._count(f"churn.faults.ignored.{kind}", 1)
        self.events_applied += 1
        self._schedule_next()

    def _count(self, name: str, value: float) -> None:
        if self.registry is not None:
            self.registry.inc(name, float(value), **self.labels)

    def __repr__(self) -> str:
        return (f"ChurnInjector(applied={self.events_applied}, "
                f"exhausted={self.exhausted}, ledger={self.ledger!r})")
