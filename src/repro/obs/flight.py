"""Per-channel flight recorder: a bounded ring of span records plus
table snapshots keyed by span, replayable after the fact.

A crash investigator's black box for one ``<S,G>`` channel: the last
``maxlen`` finished spans interleaved with per-round MCT/MFT snapshots,
in arrival order.  Drivers push snapshots at round boundaries tagged
with the span-id watermark, so a replay shows exactly which walks sit
between two table states — the raw material the explain engine (and a
human) needs to reconstruct "how did this entry get here".

Like everything in the obs layer this module imports nothing from the
rest of :mod:`repro`; snapshots arrive as already-structural data
(nested tuples from the drivers' ``_snapshot()``).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.obs.causal import PathOrFile, Span, _jsonable, span_from_dict

SPAN = "span"
SNAPSHOT = "snapshot"


@dataclass(frozen=True, slots=True)
class FlightEntry:
    """One ring slot: a finished span or a table snapshot."""

    kind: str  # SPAN or SNAPSHOT
    t: float
    span: Optional[Span] = None  # kind == SPAN
    label: str = ""  # kind == SNAPSHOT: e.g. "round 3"
    tables: Any = None  # kind == SNAPSHOT: structural table dump
    span_watermark: int = 0  # snapshots: spans below this id preceded it

    def render(self) -> str:
        if self.kind == SPAN and self.span is not None:
            outcome = f" -> {self.span.outcome}" if self.span.outcome else ""
            return f"[t={self.t:g}] {self.span.label()}{outcome}"
        return f"[t={self.t:g}] snapshot {self.label}: {self.tables!r}"


class FlightRecorder:
    """Bounded per-channel ring of :class:`FlightEntry` records.

    ``maxlen`` bounds each channel's ring independently; evictions are
    counted per channel in :attr:`dropped` (exported by owners as
    ``flight.dropped``).  The recorder is fed by
    :meth:`CausalTracer.finish` (spans) and by drivers at round
    boundaries (snapshots).
    """

    def __init__(self, maxlen: int = 256) -> None:
        self.maxlen = maxlen
        self._rings: Dict[str, Deque[FlightEntry]] = {}
        self.dropped: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _push(self, channel: str, entry: FlightEntry) -> None:
        ring = self._rings.get(channel)
        if ring is None:
            ring = deque(maxlen=self.maxlen)
            self._rings[channel] = ring
        if len(ring) == self.maxlen:
            self.dropped[channel] = self.dropped.get(channel, 0) + 1
        ring.append(entry)

    def record_span(self, channel: str, span: Span) -> None:
        """Called by the tracer when a span finishes."""
        self._push(channel, FlightEntry(kind=SPAN, t=span.t, span=span))

    def snapshot(self, channel: str, t: float, label: str,
                 tables: Any, span_watermark: int = 0) -> None:
        """Record a structural table dump (e.g. the static drivers'
        ``_snapshot()`` output) at a round boundary.  ``span_watermark``
        is the tracer's ``next_id`` at snapshot time: every span with a
        smaller id happened before these tables."""
        self._push(channel, FlightEntry(
            kind=SNAPSHOT, t=t, label=label, tables=tables,
            span_watermark=span_watermark,
        ))

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def channels(self) -> List[str]:
        """Channels with recorded history, in first-seen order."""
        return list(self._rings)

    def entries(self, channel: str) -> List[FlightEntry]:
        """The retained ring for a channel, oldest first."""
        return list(self._rings.get(channel, ()))

    def __len__(self) -> int:
        return sum(len(ring) for ring in self._rings.values())

    def replay(self, channel: str) -> Iterator[str]:
        """Render the channel's ring one line at a time, oldest first —
        the human-readable black-box readout."""
        for entry in self.entries(channel):
            yield entry.render()

    def snapshots_around(self, channel: str, span_id: int
                         ) -> Tuple[Optional[FlightEntry],
                                    Optional[FlightEntry]]:
        """The last snapshot before and the first snapshot after the
        given span — the table states bracketing one walk."""
        before: Optional[FlightEntry] = None
        for entry in self.entries(channel):
            if entry.kind != SNAPSHOT:
                continue
            if entry.span_watermark <= span_id:
                before = entry
            else:
                return before, entry
        return before, None

    # ------------------------------------------------------------------
    # Archival
    # ------------------------------------------------------------------
    def dump(self, target: PathOrFile) -> int:
        """Write every channel's ring as JSON lines; returns the count."""
        lines = []
        for channel, ring in self._rings.items():
            for entry in ring:
                raw: Dict[str, Any] = {
                    "channel": channel, "kind": entry.kind, "t": entry.t,
                }
                if entry.kind == SPAN and entry.span is not None:
                    raw["record"] = entry.span.to_dict()
                else:
                    raw["label"] = entry.label
                    raw["tables"] = _structural(entry.tables)
                    raw["watermark"] = entry.span_watermark
                lines.append(json.dumps(raw, sort_keys=True))
        text = "\n".join(lines) + ("\n" if lines else "")
        if hasattr(target, "write"):
            target.write(text)  # type: ignore[union-attr]
        else:
            Path(target).write_text(text)  # type: ignore[arg-type]
        return len(lines)

    @classmethod
    def load(cls, source: PathOrFile, maxlen: int = 256) -> "FlightRecorder":
        """Rebuild a recorder from a :meth:`dump` archive."""
        if hasattr(source, "read"):
            text = source.read()  # type: ignore[union-attr]
        else:
            text = Path(source).read_text()  # type: ignore[arg-type]
        recorder = cls(maxlen=maxlen)
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            if raw["kind"] == SPAN:
                recorder.record_span(raw["channel"],
                                     span_from_dict(raw["record"]))
            else:
                recorder.snapshot(raw["channel"], raw["t"], raw["label"],
                                  raw["tables"],
                                  span_watermark=raw.get("watermark", 0))
        return recorder

    def __repr__(self) -> str:
        return (f"FlightRecorder(channels={len(self._rings)}, "
                f"entries={len(self)}, maxlen={self.maxlen})")


def _structural(value: Any) -> Any:
    """JSON-compatible projection of nested snapshot tuples."""
    if isinstance(value, (list, tuple)):
        return [_structural(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _structural(v) for k, v in value.items()}
    return _jsonable(value)
