"""Persisted benchmark baselines with regression gating.

The paper's headline claims are quantitative, so a perf regression in
the hot paths (Dijkstra, ``Link.transmit``, the static drivers, the
engine loop) must not land silently.  This module runs a small suite of
**guarded micro-benchmarks** headlessly, records wall-clock percentiles
(p50/p90/p99 over individually timed iterations) plus a set of
deterministic protocol metrics from a fixed seeded sweep, writes the
whole thing to a canonical ``BENCH_<rev>.json``, and diffs it against a
committed baseline with per-metric tolerance thresholds — nonzero exit
on regression, which is what CI gates on.

Machine-speed normalization: absolute wall clock is meaningless across
laptops and CI runners, so every benchmark's p50 is also stored as a
ratio against a fixed pure-python ``calibration`` busy loop measured in
the same process.  The regression gate compares *normalized* p50s, so
a uniformly slower machine cancels out and only relative slowdowns of
the guarded paths trip it.

Protocol metrics (tree cost, delay, convergence rounds, control
overhead) come from a fully seeded sweep at a pinned run budget — they
are deterministic, so the gate holds them to a near-exact tolerance: a
drift there is a behaviour change, not noise.

The module is import-light (every ``repro`` import is function-local)
so :mod:`repro.obs` stays a leaf package.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import Histogram, MetricsRegistry

#: Baseline file schema version.
BASELINE_FORMAT = 1

#: Default relative budget on a guarded benchmark's normalized p50
#: before the gate trips (the CI job fails on >20% regressions).
DEFAULT_TOLERANCE = 0.20

#: Deterministic protocol metrics must match to this relative epsilon.
PROTOCOL_TOLERANCE = 1e-6

#: Timed iterations per micro-benchmark (CI reduces via --iterations).
DEFAULT_ITERATIONS = 30

#: Monte-Carlo budget of the protocol-metric sweep.  Pinned: baselines
#: recorded at different budgets are not comparable, so ``--check``
#: always reruns at the stored budget.
BENCH_SWEEP_RUNS = 3

#: Seed of the protocol-metric sweep (the paper's publication date).
BENCH_SWEEP_SEED = 20010827


@dataclass(frozen=True)
class BenchSpec:
    """One guarded micro-benchmark.

    ``build()`` does the un-timed setup and returns the zero-argument
    callable that gets timed; per-spec ``tolerance`` overrides the
    default regression budget.  Targets are resolved *inside* the
    timed callable (module attribute lookups, not ``from``-imports
    captured at definition time) so tests can monkeypatch a hot path
    and watch the gate trip.
    """

    name: str
    build: Callable[[], Callable[[], object]]
    tolerance: float = DEFAULT_TOLERANCE


# ----------------------------------------------------------------------
# The guarded hot paths
# ----------------------------------------------------------------------
def _build_calibration() -> Callable[[], object]:
    """Fixed pure-python busy work: the machine-speed yardstick."""

    def run() -> int:
        total = 0
        for i in range(200_000):
            total += i
        return total

    return run


def _build_engine_events() -> Callable[[], object]:
    """5k chained events through the discrete-event engine."""
    from repro.netsim import engine

    def run() -> int:
        simulator = engine.Simulator()
        remaining = [5_000]

        def tick() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                simulator.schedule(1.0, tick)

        simulator.schedule(1.0, tick)
        simulator.run()
        return simulator.events_executed

    return run


def _build_dijkstra() -> Callable[[], object]:
    """Single-source shortest paths on the paper's 50-node topology."""
    from repro.routing import dijkstra
    from repro.topology.random_graphs import random_topology_50

    topology = random_topology_50(seed=3)

    def run() -> object:
        return dijkstra.shortest_paths_from(topology, 0)

    return run


def _build_routing_tables() -> Callable[[], object]:
    """All 36 forwarding tables on the ISP topology."""
    from repro.routing import tables
    from repro.topology.isp import isp_topology

    topology = isp_topology(seed=3)

    def run() -> object:
        routing = tables.UnicastRouting(topology)
        for node in topology.nodes:
            routing.table(node)
        return routing

    return run


def _build_hbh_converge() -> Callable[[], object]:
    """One converged 8-receiver HBH tree plus a data distribution —
    the unit of every Monte-Carlo cell."""
    from repro.core import static_driver
    from repro.routing.tables import UnicastRouting
    from repro.topology.isp import isp_topology

    topology = isp_topology(seed=3)
    routing = UnicastRouting(topology)
    receivers = (20, 22, 25, 27, 29, 31, 33, 35)

    def run() -> object:
        driver = static_driver.StaticHbh(topology, 18, routing=routing)
        for receiver in receivers:
            driver.add_receiver(receiver)
            driver.converge(max_rounds=80)
        return driver.distribute_data()

    return run


def _build_routing_incremental() -> Callable[[], object]:
    """One link flap repaired across 200 warm origin trees.

    Builds every table once outside the timed loop; the measured unit
    is the incremental substrate's whole delta path (cost listeners,
    per-edge coalescing, subtree detach + restricted Dijkstra repair,
    canonical predecessor fix-up) for a down-then-restore of one link,
    eagerly applied to all 200 origins via ``refresh_all``.  A
    regression to wholesale invalidation re-runs 200 full Dijkstras per
    flap and blows the budget by an order of magnitude — this is the
    ratchet on the incremental-routing rewrite.
    """
    from repro.netsim.network import Network
    from repro.routing.tables import UnicastRouting
    from repro.topology.random_graphs import random_topology

    topology = random_topology(200, 600, seed=7)
    routing = UnicastRouting(topology)
    for node in topology.nodes:
        routing.table(node)
    a, b = next(topology.undirected_edges())
    cost_ab = topology.cost(a, b)
    cost_ba = topology.cost(b, a)
    failed = Network.FAILED_LINK_COST

    def run() -> int:
        topology.set_cost(a, b, failed)
        topology.set_cost(b, a, failed)
        changed = routing.refresh_all()
        topology.set_cost(a, b, cost_ab)
        topology.set_cost(b, a, cost_ba)
        return changed + routing.refresh_all()

    return run


def _build_link_transmit() -> Callable[[], object]:
    """1k packets pumped through ``Link.transmit`` + engine delivery."""
    from repro.netsim.network import Network
    from repro.netsim.packet import Packet
    from repro.topology.paper import fig2_topology

    def run() -> int:
        network = Network(fig2_topology())
        a, b = network.links()[0].endpoints()
        link = network.link_between(a, b)
        packet = Packet(src=network.address_of(a),
                        dst=network.address_of(b), payload=None)
        for _ in range(1_000):
            link.transmit(a, packet)
        return network.simulator.run()

    return run


def _build_workload_generate() -> Callable[[], object]:
    """10k churn events drawn lazily from a 1k-channel Zipf model —
    the stream-generation side of the churn engine, no protocol work.
    Guards the O(1)-memory slot machinery (per-slot RNGs, thinning,
    leave-bucket spill) against accidental materialization."""
    from repro.workload import ChurnModel, ChurnSchedule, SessionDuration

    model = ChurnModel(
        channels=1_000, base_rate=400.0,
        session=SessionDuration(scale=120.0, cap=600.0),
    )
    sites = tuple(f"site{i}" for i in range(16))

    def run() -> int:
        schedule = ChurnSchedule(model, sites, seed=11)
        count = 0
        for _ in schedule.events(limit=10_000):
            count += 1
        return count

    return run


def _build_flows_record() -> Callable[[], object]:
    """50 flow-telemetry digests of a converged 8-receiver HBH
    distribution — the per-measurement cost of the flows plane
    (path reconstruction, per-receiver SLO metrics, utilization rows)
    with the registry attached, as every flows cell runs it."""
    from repro.core import static_driver
    from repro.obs.flow import FlowTelemetry
    from repro.routing.tables import UnicastRouting
    from repro.topology.isp import isp_topology

    topology = isp_topology(seed=3)
    routing = UnicastRouting(topology)
    driver = static_driver.StaticHbh(topology, 18, routing=routing)
    for receiver in (20, 22, 25, 27, 29, 31, 33, 35):
        driver.add_receiver(receiver)
        driver.converge(max_rounds=80)
    distribution = driver.distribute_data()

    def run() -> int:
        flow = FlowTelemetry(enabled=True, registry=MetricsRegistry())
        for _ in range(50):
            flow.observe_distribution("hbh", "<18,G>", distribution,
                                      routing=routing, source=18)
        return len(flow)

    return run


#: Every guarded micro-benchmark, calibration first.
MICRO_BENCHMARKS: Tuple[BenchSpec, ...] = (
    BenchSpec("calibration", _build_calibration),
    BenchSpec("engine.events", _build_engine_events),
    BenchSpec("routing.dijkstra", _build_dijkstra),
    BenchSpec("routing.tables", _build_routing_tables),
    # The incremental-repair ratchet: a link flap repaired across 200
    # warm origin trees.  Explicit tolerance: repair work is sparse and
    # pointer-chasing (dict/heap bound), so its normalized ratio swings
    # more with allocator state than the dense Dijkstra benches.
    BenchSpec("routing.incremental", _build_routing_incremental,
              tolerance=0.30),
    # Allocation-bound, so its calibration-normalized ratio swings with
    # cache/frequency state more than the pure-compute benches.  The
    # committed baseline ratchets the walk-plan rewrite (~2.2x: norm
    # 2.05 -> 0.95); budget sized to the post-rewrite cross-invocation
    # spread (0.91-0.98 on an idle box), tightened from the pre-rewrite
    # 0.35 now that the noisier allocation paths are gone.
    BenchSpec("hbh.converge", _build_hbh_converge, tolerance=0.30),
    # Ratcheted ~7x by the batched same-link drain (norm 3.63 -> 0.52).
    # The remaining cost is engine delivery with a long scheduler-noise
    # tail (p99 ~5x p50), so the budget is wider than the default even
    # though the baseline itself enforces the rewrite.
    BenchSpec("link.transmit", _build_link_transmit, tolerance=0.30),
    # Pure stream generation: RNG draws + heap spill, no protocol work.
    # Wider budget for the same reason as the other allocation-bound
    # benches — the timed unit is mostly object construction.
    BenchSpec("workload.generate", _build_workload_generate,
              tolerance=0.30),
    # The flows-plane measurement unit: record construction + registry
    # observes dominate, so it is allocation-bound like the benches
    # above and carries the same widened budget.
    BenchSpec("flows.record", _build_flows_record, tolerance=0.30),
)


def bench_names() -> List[str]:
    """The guarded benchmark names, suite order."""
    return [spec.name for spec in MICRO_BENCHMARKS]


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
def _time_spec(spec: BenchSpec, iterations: int,
               registry: Optional[MetricsRegistry]) -> Dict[str, float]:
    """Warm up, then time ``iterations`` runs of one spec."""
    timed = spec.build()
    timed()  # warm-up, untimed
    histogram = Histogram()
    for _ in range(iterations):
        started = time.perf_counter()
        timed()
        histogram.observe(time.perf_counter() - started)
    if registry is not None:
        registry.histogram("bench.seconds", bench=spec.name).extend(
            histogram.values()
        )
    return {
        "n": float(histogram.count),
        "mean": histogram.mean,
        "min": histogram.min,
        "p50": histogram.percentile(50),
        "p90": histogram.percentile(90),
        "p95": histogram.percentile(95),
        "p99": histogram.percentile(99),
    }


def run_micro(
    iterations: int = DEFAULT_ITERATIONS,
    names: Optional[Sequence[str]] = None,
    registry: Optional[MetricsRegistry] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Dict[str, float]]:
    """Time every selected micro-benchmark; return per-bench percentiles.

    Each spec's callable runs once un-timed (warm-up: imports, caches)
    and then ``iterations`` timed times; per-iteration wall clock goes
    through an obs :class:`Histogram`, so the p50/p90/p99 here are the
    same nearest-rank percentiles every other instrument reports.
    ``registry`` (optional) additionally records each sample as
    ``bench.seconds{bench=<name>}``.

    Normalization is *interleaved*: the calibration loop is re-measured
    after every benchmark, and each benchmark's ``normalized_p50``
    divides by the fastest calibration sample from its own time window
    (the min of the passes immediately before and after it).  Two
    reasons: scheduler noise is one-sided, so best-of-N is the stable
    machine-speed estimate; and CPU frequency drifts over a suite run
    (ramp-up, thermal throttling), so a single calibration taken at the
    start would skew every later ratio.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    selected = [spec for spec in MICRO_BENCHMARKS
                if names is None or spec.name in set(names)]
    if names is not None:
        known = {spec.name for spec in MICRO_BENCHMARKS}
        unknown = set(names) - known
        if unknown:
            raise ValueError(
                f"unknown benchmark(s) {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
    calibration_spec = MICRO_BENCHMARKS[0]
    assert calibration_spec.name == "calibration"
    results: Dict[str, Dict[str, float]] = {}
    if progress is not None:
        progress("calibration")
    window = _time_spec(
        calibration_spec, iterations,
        registry if "calibration" in {s.name for s in selected} else None,
    )
    if any(spec.name == "calibration" for spec in selected):
        results["calibration"] = dict(window)
        results["calibration"]["normalized_p50"] = (
            window["p50"] / window["min"] if window["min"] > 0 else 0.0
        )
    for spec in selected:
        if spec.name == "calibration":
            continue
        if progress is not None:
            progress(spec.name)
        stats = _time_spec(spec, iterations, registry)
        after = _time_spec(calibration_spec, iterations, None)
        yardstick = min(window["min"], after["min"])
        stats["normalized_p50"] = (
            stats["p50"] / yardstick if yardstick > 0 else 0.0
        )
        results[spec.name] = stats
        window = after
    return results


def collect_protocol_metrics(
    runs: int = BENCH_SWEEP_RUNS,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Dict[str, float]]:
    """Key protocol metrics from a fully seeded sweep (deterministic).

    One ISP-topology sweep at a single group size, identical seeds every
    invocation: tree cost, delay, convergence rounds and control
    overhead per protocol.  Any drift against a baseline recorded at
    the same ``runs`` budget is a behaviour change.
    """
    from repro.experiments.config import SweepConfig
    from repro.experiments.harness import run_sweep

    if progress is not None:
        progress("protocol sweep")
    config = SweepConfig(name="bench-protocols", topology="isp",
                         group_sizes=(8,), runs=runs,
                         seed=BENCH_SWEEP_SEED)
    registry = MetricsRegistry()
    run_sweep(config, metrics=registry)
    channels: Dict[str, str] = {}
    for _name, labels, _instr in registry.collect("tree.cost.copies"):
        channels[labels["protocol"]] = labels["channel"]
    metrics: Dict[str, Dict[str, float]] = {}
    for protocol in config.protocols:
        labels = {"protocol": protocol, "channel": channels[protocol]}
        metrics[protocol] = {
            "tree_cost_copies_mean": registry.histogram(
                "tree.cost.copies", **labels).mean,
            "delay_mean": registry.histogram("delay.mean", **labels).mean,
            "join_converge_rounds_mean": registry.histogram(
                "join.converge.rounds", **labels).mean,
            "control_messages_total": registry.counter(
                "control.messages", **labels).value,
        }
    return metrics


# ----------------------------------------------------------------------
# Baseline files
# ----------------------------------------------------------------------
def git_revision() -> str:
    """The repo's short revision, or ``worktree`` when unavailable."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "worktree"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "worktree"


def default_output_path(rev: Optional[str] = None) -> str:
    """The canonical artifact name: ``BENCH_<rev>.json``."""
    return f"BENCH_{rev or git_revision()}.json"


def collect_baseline(
    iterations: int = DEFAULT_ITERATIONS,
    sweep_runs: int = BENCH_SWEEP_RUNS,
    registry: Optional[MetricsRegistry] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the full suite and assemble the baseline document."""
    import platform

    micro = run_micro(iterations=iterations, registry=registry,
                      progress=progress)
    protocols = collect_protocol_metrics(runs=sweep_runs,
                                         progress=progress)
    return {
        "format": BASELINE_FORMAT,
        "rev": git_revision(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "iterations": iterations,
        "sweep_runs": sweep_runs,
        "micro": micro,
        "protocols": protocols,
    }


def write_baseline(path: str, baseline: Dict[str, object]) -> None:
    """Write a baseline document as canonical (sorted, indented) JSON."""
    with open(path, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> Dict[str, object]:
    """Read a baseline document back (format-checked)."""
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("format") != BASELINE_FORMAT:
        raise ValueError(
            f"{path} is not a format-{BASELINE_FORMAT} bench baseline "
            f"(got format {data.get('format') if isinstance(data, dict) else None!r})"
        )
    return data


# ----------------------------------------------------------------------
# Regression gating
# ----------------------------------------------------------------------
@dataclass
class Comparison:
    """The outcome of diffing a fresh run against a baseline."""

    regressions: List[str]
    improvements: List[str]
    notes: List[str]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines: List[str] = []
        for text in self.regressions:
            lines.append(f"REGRESSION  {text}")
        for text in self.improvements:
            lines.append(f"improvement {text}")
        for text in self.notes:
            lines.append(f"note        {text}")
        lines.append(
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s)"
        )
        return "\n".join(lines)


def _tolerance_for(name: str) -> float:
    for spec in MICRO_BENCHMARKS:
        if spec.name == name:
            return spec.tolerance
    return DEFAULT_TOLERANCE


def micro_regression_names(comparison: Comparison) -> List[str]:
    """The micro-benchmark names a comparison flagged as regressed."""
    known = set(bench_names())
    names = []
    for entry in comparison.regressions:
        if entry.startswith("micro "):
            name = entry[len("micro "):].split(":", 1)[0].strip()
            if name in known:
                names.append(name)
    return names


def compare_baselines(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: Optional[float] = None,
) -> Comparison:
    """Diff ``current`` against ``baseline`` with per-metric budgets.

    Micro-benchmarks compare **normalized** p50 (ratio to the
    calibration loop) so machine speed cancels; ``tolerance`` (or each
    spec's own) bounds the allowed relative slowdown.  The
    ``calibration`` entry itself is never gated — it *is* the yardstick.
    Protocol metrics are deterministic and compare near-exactly, but
    only when both documents used the same sweep budget.
    """
    result = Comparison(regressions=[], improvements=[], notes=[])
    base_micro = baseline.get("micro")
    cur_micro = current.get("micro")
    assert isinstance(base_micro, dict) and isinstance(cur_micro, dict)
    for name in sorted(base_micro):
        if name == "calibration":
            continue
        if name not in cur_micro:
            result.notes.append(f"micro {name}: not measured in this run")
            continue
        budget = tolerance if tolerance is not None else _tolerance_for(name)
        base_p50 = float(base_micro[name].get("normalized_p50", 0.0))
        cur_p50 = float(cur_micro[name].get("normalized_p50", 0.0))
        if base_p50 <= 0:
            result.notes.append(f"micro {name}: baseline has no "
                                f"normalized p50; skipped")
            continue
        ratio = cur_p50 / base_p50
        detail = (f"micro {name}: normalized p50 {base_p50:.4f} -> "
                  f"{cur_p50:.4f} ({ratio:+.1%} of baseline, "
                  f"budget {budget:.0%})".replace("+", ""))
        if ratio > 1.0 + budget:
            result.regressions.append(detail)
        elif ratio < 1.0 - budget:
            result.improvements.append(detail)
    for name in sorted(cur_micro):
        if name not in base_micro:
            result.notes.append(f"micro {name}: new benchmark, no baseline")

    base_protocols = baseline.get("protocols")
    cur_protocols = current.get("protocols")
    if baseline.get("sweep_runs") != current.get("sweep_runs"):
        result.notes.append(
            f"protocol metrics skipped: sweep budgets differ "
            f"({baseline.get('sweep_runs')} vs {current.get('sweep_runs')})"
        )
        return result
    assert isinstance(base_protocols, dict) and isinstance(cur_protocols, dict)
    for protocol in sorted(base_protocols):
        if protocol not in cur_protocols:
            result.notes.append(f"protocol {protocol}: not measured")
            continue
        for metric, base_value in sorted(base_protocols[protocol].items()):
            cur_value = cur_protocols[protocol].get(metric)
            if cur_value is None:
                result.notes.append(
                    f"protocol {protocol}.{metric}: not measured")
                continue
            scale = max(abs(float(base_value)), 1e-12)
            if abs(float(cur_value) - float(base_value)) / scale \
                    > PROTOCOL_TOLERANCE:
                result.regressions.append(
                    f"protocol {protocol}.{metric}: {base_value} -> "
                    f"{cur_value} (deterministic metric drifted)"
                )
    return result


# ----------------------------------------------------------------------
# Trend tracking and job summaries
# ----------------------------------------------------------------------
def append_trend(path: str, current: Dict[str, object],
                 branch: Optional[str] = None) -> Dict[str, object]:
    """Append one run's normalized p50s to a JSONL trend file.

    The file is an append-only, per-branch perf history (CI persists it
    across pushes): one compact record per suite run, newest last, so a
    gradual drift that stays inside each individual run's tolerance is
    still visible across the series.  Returns the appended record.
    """
    import datetime

    micro = current.get("micro")
    assert isinstance(micro, dict)
    record: Dict[str, object] = {
        "rev": current.get("rev"),
        "when": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"),
        "iterations": current.get("iterations"),
        "normalized_p50": {
            name: stats.get("normalized_p50")
            for name, stats in sorted(micro.items())
        },
    }
    if branch:
        record["branch"] = branch
    with open(path, "a") as handle:
        json.dump(record, handle, sort_keys=True)
        handle.write("\n")
    return record


def render_summary_markdown(
    current: Dict[str, object],
    baseline: Optional[Dict[str, object]] = None,
    comparison: Optional[Comparison] = None,
) -> str:
    """A GitHub-flavored markdown table of this run vs the baseline.

    Written to ``$GITHUB_STEP_SUMMARY`` by the CI bench job: one row
    per guarded benchmark with the normalized p50 delta against the
    committed baseline and whether it stayed inside its budget.
    """
    micro = current.get("micro")
    assert isinstance(micro, dict)
    base_micro = baseline.get("micro") if baseline else None
    lines = [
        "### Benchmark deltas (normalized p50, lower is faster)",
        "",
        "| benchmark | baseline | current | delta | budget | status |",
        "|---|---:|---:|---:|---:|---|",
    ]
    for name in bench_names():
        if name not in micro:
            continue
        cur = float(micro[name].get("normalized_p50", 0.0))
        if name == "calibration":
            lines.append(f"| {name} | — | {cur:.3f} | — | — | yardstick |")
            continue
        budget = _tolerance_for(name)
        base = None
        if isinstance(base_micro, dict) and name in base_micro:
            base = float(base_micro[name].get("normalized_p50", 0.0))
        if not base:
            lines.append(f"| {name} | — | {cur:.3f} | — "
                         f"| {budget:.0%} | no baseline |")
            continue
        delta = cur / base - 1.0
        status = ("regression" if delta > budget
                  else "improvement" if delta < -budget else "ok")
        lines.append(f"| {name} | {base:.3f} | {cur:.3f} | {delta:+.1%} "
                     f"| {budget:.0%} | {status} |")
    if comparison is not None:
        lines.append("")
        lines.append(
            f"**{len(comparison.regressions)} regression(s), "
            f"{len(comparison.improvements)} improvement(s)** vs rev "
            f"`{baseline.get('rev') if baseline else '?'}`"
        )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# CLI driver
# ----------------------------------------------------------------------
def run_bench(
    out: Optional[str] = None,
    check: Optional[str] = None,
    iterations: Optional[int] = None,
    tolerance: Optional[float] = None,
    quiet: bool = False,
    echo: Optional[Callable[[str], None]] = None,
    trend: Optional[str] = None,
    trend_branch: Optional[str] = None,
    summary: Optional[str] = None,
) -> int:
    """The ``experiments bench`` implementation.

    Runs the suite, writes ``out`` (default ``BENCH_<rev>.json``), and
    — when ``check`` names a committed baseline — diffs against it and
    returns nonzero on any regression.  ``--check`` reruns the protocol
    sweep at the *baseline's* stored budget so deterministic metrics
    stay comparable.  ``trend`` appends the run's normalized p50s to a
    JSONL history (tagged ``trend_branch`` when given); ``summary``
    writes a markdown delta table (the CI job appends it to
    ``$GITHUB_STEP_SUMMARY``).
    """
    import sys

    emit: Callable[[str], None] = echo if echo is not None else print
    if iterations is None:
        iterations = DEFAULT_ITERATIONS

    def progress(name: str) -> None:
        if not quiet:
            print(f"  bench: {name}", file=sys.stderr)

    sweep_runs = BENCH_SWEEP_RUNS
    baseline_doc: Optional[Dict[str, object]] = None
    if check:
        baseline_doc = load_baseline(check)
        stored = baseline_doc.get("sweep_runs")
        if isinstance(stored, int) and stored >= 1:
            sweep_runs = stored
    current = collect_baseline(iterations=iterations,
                               sweep_runs=sweep_runs, progress=progress)
    out_path = out or default_output_path(str(current["rev"]))
    write_baseline(out_path, current)
    micro = current["micro"]
    assert isinstance(micro, dict)
    for name in bench_names():
        stats = micro[name]
        emit(f"{name:<18} p50 {stats['p50'] * 1e3:9.3f} ms   "
             f"p90 {stats['p90'] * 1e3:9.3f} ms   "
             f"p95 {stats.get('p95', 0.0) * 1e3:9.3f} ms   "
             f"p99 {stats['p99'] * 1e3:9.3f} ms   "
             f"x{stats['normalized_p50']:.2f} of calibration")
    emit(f"wrote {out_path}")
    if baseline_doc is None:
        if trend:
            append_trend(trend, current, branch=trend_branch)
            emit(f"appended trend record to {trend}")
        if summary:
            with open(summary, "w") as handle:
                handle.write(render_summary_markdown(current))
            emit(f"wrote summary to {summary}")
        return 0
    comparison = compare_baselines(current, baseline_doc,
                                   tolerance=tolerance)
    # Transient machine load can inflate a p50 past its budget; a real
    # code regression reproduces.  Re-measure only the offenders (with
    # a fresh calibration) and keep the verdict only if it persists.
    suspects = micro_regression_names(comparison)
    if suspects:
        emit(f"retrying {len(suspects)} regressed benchmark(s): "
             f"{', '.join(suspects)}")
        remeasured = run_micro(iterations=iterations,
                               names=["calibration", *suspects],
                               progress=progress)
        for name in suspects:
            micro[name] = remeasured[name]
        write_baseline(out_path, current)
        comparison = compare_baselines(current, baseline_doc,
                                       tolerance=tolerance)
    emit(f"-- regression gate vs {check} "
         f"(baseline rev {baseline_doc.get('rev')}) --")
    emit(comparison.render())
    if trend:
        append_trend(trend, current, branch=trend_branch)
        emit(f"appended trend record to {trend}")
    if summary:
        with open(summary, "w") as handle:
            handle.write(render_summary_markdown(current, baseline_doc,
                                                 comparison))
        emit(f"wrote summary to {summary}")
    return 0 if comparison.ok else 1
