"""Causal control-plane tracing: spans, traces and span DAGs.

HBH's whole contribution is a three-message causal chain
(``join`` -> ``tree`` -> ``fusion``) whose interleaving under
asymmetric routing determines the tree shape.  A flat event log cannot
answer "*which* intercepted join caused this MFT entry"; this module
records the causality itself:

- a **trace** groups everything caused by one origin event on one
  channel (a receiver's periodic join, the source's tree emission of
  one round, one data packet injection).  Its id is a human-readable
  string such as ``<0,G>/12.join@r3``.
- a **span** is one message walk (or data fan-out leg) inside a trace:
  it knows its parent span — the message whose rule processing
  originated it — so a join interception that re-originates a join, a
  tree that regenerates trees and fusions, and a branching node's data
  copies all become edges of a **span DAG**.
- an **effect** records one table mutation a span performed
  (``(node, table, address, action)``), which is what lets the explain
  engine walk backwards from "router X has MFT entry Y" to the origin
  event that put it there.

The tracer is **off by default and off the hot path**: drivers hold an
``Optional[CausalTracer]`` and guard every call site with a single
``is None`` / ``enabled`` check, so Monte-Carlo sweeps pay nothing.

This module sits in the obs layer: it imports nothing from the rest of
:mod:`repro`, so every layer above (core, netsim, protocols, verify)
can instrument itself without import cycles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    IO,
    Any,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

PathOrFile = Union[str, Path, IO[str]]

#: Span names used by the instrumented drivers (anything goes, but
#: these are the vocabulary tests and the explain engine rely on).
JOIN = "join"
INITIAL_JOIN = "join*"
TREE = "tree"
FUSION = "fusion"
DATA = "data"


@dataclass(frozen=True, slots=True)
class Effect:
    """One table mutation performed while processing a span's message."""

    node: Hashable
    table: str  # "mft", "mct", "source-mft", ...
    address: Hashable
    action: str  # "add", "refresh-join", "refresh-tree", "mark", ...
    t: float

    def __str__(self) -> str:
        return (f"{self.node}.{self.table}[{self.address}] "
                f"{self.action} @t={self.t:g}")


@dataclass(slots=True)
class Span:
    """One message walk: where it started, what it did, what caused it.

    Mutable on purpose — a walk's ``outcome`` and ``effects`` are only
    known as the message travels; the identity fields never change.
    """

    span_id: int
    trace_id: str
    parent_id: Optional[int]
    name: str  # "join", "join*", "tree", "fusion", "data"
    node: Hashable  # origin node of the walk
    t: float  # virtual time the walk started
    channel: str  # rendered channel label, e.g. "<0,G>"
    target: Any = None  # joiner / tree target / fusion receivers
    outcome: str = ""  # filled when the walk ends
    effects: List[Effect] = field(default_factory=list)
    hops: List[Hashable] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        """Whether the walk's fate is known (unfinished = lost/in flight)."""
        return bool(self.outcome)

    def label(self) -> str:
        """Compact one-line identity, the unit of rendered chains."""
        target = "" if self.target is None else f"({self.target})"
        return f"{self.node}.{self.name}{target}@t={self.t:g}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible projection (one JSONL line)."""
        out: Dict[str, Any] = {
            "span": self.span_id,
            "trace": self.trace_id,
            "name": self.name,
            "node": _jsonable(self.node),
            "t": self.t,
            "channel": self.channel,
        }
        if self.parent_id is not None:
            out["parent"] = self.parent_id
        if self.target is not None:
            out["target"] = _jsonable(self.target)
        if self.outcome:
            out["outcome"] = self.outcome
        if self.effects:
            out["effects"] = [
                {"node": _jsonable(e.node), "table": e.table,
                 "address": _jsonable(e.address), "action": e.action,
                 "t": e.t}
                for e in self.effects
            ]
        if self.hops:
            out["hops"] = [_jsonable(h) for h in self.hops]
        return out


_SCALARS = (str, int, float, bool, type(None))


def _jsonable(value: Any) -> Any:
    return value if isinstance(value, _SCALARS) else repr(value)


def span_from_dict(raw: Dict[str, Any]) -> Span:
    """Rebuild a span from its JSONL projection (non-scalar ids come
    back stringified, exactly like :mod:`repro.obs.tracing`)."""
    span = Span(
        span_id=raw["span"],
        trace_id=raw["trace"],
        parent_id=raw.get("parent"),
        name=raw["name"],
        node=raw["node"],
        t=raw["t"],
        channel=raw["channel"],
        target=raw.get("target"),
        outcome=raw.get("outcome", ""),
    )
    for e in raw.get("effects", ()):
        span.effects.append(Effect(e["node"], e["table"], e["address"],
                                   e["action"], e["t"]))
    span.hops.extend(raw.get("hops", ()))
    return span


SpanOrId = Union[Span, int]


class CausalTracer:
    """Records spans while enabled; the span store behind the DAG.

    ``maxlen`` bounds memory like a ring buffer: the oldest *finished*
    spans are evicted first and counted in :attr:`dropped` (exported to
    a metrics registry as ``trace.dropped`` by the owners that hold
    one).  A ``recorder`` (see :mod:`repro.obs.flight`) receives every
    finished span for the per-channel flight ring.
    """

    def __init__(self, enabled: bool = True,
                 maxlen: Optional[int] = None,
                 recorder: Optional[Any] = None) -> None:
        self.enabled = enabled
        self.maxlen = maxlen
        self.recorder = recorder
        self.dropped = 0
        self._spans: Dict[int, Span] = {}
        self._next_id = 1

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin(self, name: str, node: Hashable, t: float, channel: str,
              trace_id: Optional[str] = None,
              parent: Optional[SpanOrId] = None,
              target: Any = None) -> Span:
        """Open a span.  A ``parent`` chains it into that span's trace
        (inheriting the trace id unless one is given); without a parent
        the span roots a new trace."""
        parent_id: Optional[int] = None
        if parent is not None:
            parent_span = parent if isinstance(parent, Span) else \
                self._spans.get(parent)
            if parent_span is not None:
                parent_id = parent_span.span_id
                if trace_id is None:
                    trace_id = parent_span.trace_id
            elif isinstance(parent, int):
                parent_id = parent  # evicted parent: keep the edge
        if trace_id is None:
            trace_id = f"{channel}/{node}.{name}@t={t:g}"
        span = Span(
            span_id=self._next_id, trace_id=trace_id, parent_id=parent_id,
            name=name, node=node, t=t, channel=channel, target=target,
        )
        self._next_id += 1
        self._spans[span.span_id] = span
        if self.maxlen is not None and len(self._spans) > self.maxlen:
            self._evict()
        return span

    def _evict(self) -> None:
        """Drop the oldest span (dict preserves insertion order)."""
        oldest = next(iter(self._spans))
        del self._spans[oldest]
        self.dropped += 1

    def effect(self, span: Optional[SpanOrId], node: Hashable, table: str,
               address: Hashable, action: str, t: float) -> None:
        """Attach one table mutation to a span (by object or id)."""
        target = self._resolve(span)
        if target is not None:
            target.effects.append(Effect(node, table, address, action, t))

    def hop(self, span: Optional[SpanOrId], node: Hashable) -> None:
        """Record one forwarding hop of a span's message."""
        target = self._resolve(span)
        if target is not None:
            target.hops.append(node)

    def finish(self, span: Optional[SpanOrId], outcome: str) -> None:
        """Close a span with its fate ("intercepted by 5 (join rule 3)",
        "reached source", ...) and forward it to the flight recorder."""
        target = self._resolve(span)
        if target is None:
            return
        target.outcome = outcome
        if self.recorder is not None:
            self.recorder.record_span(target.channel, target)

    def _resolve(self, span: Optional[SpanOrId]) -> Optional[Span]:
        if span is None:
            return None
        if isinstance(span, Span):
            return span
        return self._spans.get(span)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, span_id: int) -> Optional[Span]:
        """The live span with that id, if not evicted."""
        return self._spans.get(span_id)

    @property
    def next_id(self) -> int:
        """The id the next span will get (round-bracketing marker)."""
        return self._next_id

    def spans(self) -> List[Span]:
        """All retained spans in creation order."""
        return list(self._spans.values())

    def __len__(self) -> int:
        return len(self._spans)

    def clear(self) -> None:
        """Drop every retained span (ids keep increasing; ``dropped``
        is not reset — it counts ring evictions, not clears)."""
        self._spans.clear()

    def dag(self) -> "SpanDag":
        """A queryable DAG over the retained spans."""
        return SpanDag(self.spans())

    # ------------------------------------------------------------------
    # Archival
    # ------------------------------------------------------------------
    def to_jsonl(self, target: PathOrFile) -> int:
        """Write the retained spans as JSON lines; returns the count."""
        lines = [json.dumps(span.to_dict(), sort_keys=True)
                 for span in self._spans.values()]
        text = "\n".join(lines) + ("\n" if lines else "")
        if hasattr(target, "write"):
            target.write(text)  # type: ignore[union-attr]
        else:
            Path(target).write_text(text)  # type: ignore[arg-type]
        return len(lines)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (f"CausalTracer({state}, spans={len(self._spans)}, "
                f"dropped={self.dropped})")


def read_spans(source: PathOrFile) -> List[Span]:
    """Load spans back from a JSONL archive."""
    if hasattr(source, "read"):
        text = source.read()  # type: ignore[union-attr]
    else:
        text = Path(source).read_text()  # type: ignore[arg-type]
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(span_from_dict(json.loads(line)))
    return spans


class SpanDag:
    """The reconstructible causal DAG over a set of spans.

    Parent edges come from ``parent_id``; traces are the weakly
    connected components rooted at parentless spans.  All queries
    stringify node ids and addresses for comparison, so the same code
    serves live spans (real ids) and JSONL re-imports (stringified).
    """

    def __init__(self, spans: List[Span]) -> None:
        self._spans: Dict[int, Span] = {s.span_id: s for s in spans}
        self._children: Dict[int, List[int]] = {}
        for span in spans:
            if span.parent_id is not None:
                self._children.setdefault(span.parent_id, []).append(
                    span.span_id)

    def __len__(self) -> int:
        return len(self._spans)

    def get(self, span_id: int) -> Optional[Span]:
        return self._spans.get(span_id)

    def spans(self) -> List[Span]:
        """All spans, in creation (id) order."""
        return [self._spans[i] for i in sorted(self._spans)]

    def roots(self) -> List[Span]:
        """Spans with no (retained) parent: the origin events."""
        return [s for s in self.spans()
                if s.parent_id is None or s.parent_id not in self._spans]

    def children(self, span: SpanOrId) -> List[Span]:
        """Spans directly caused by this one."""
        span_id = span.span_id if isinstance(span, Span) else span
        return [self._spans[i]
                for i in sorted(self._children.get(span_id, ()))]

    def ancestry(self, span: SpanOrId) -> List[Span]:
        """The causal chain root -> ... -> span (cycle-safe)."""
        current = span if isinstance(span, Span) else self._spans.get(span)
        chain: List[Span] = []
        seen = set()
        while current is not None and current.span_id not in seen:
            seen.add(current.span_id)
            chain.append(current)
            if current.parent_id is None:
                break
            current = self._spans.get(current.parent_id)
        chain.reverse()
        return chain

    # ------------------------------------------------------------------
    # Queries (the explain engine's substrate)
    # ------------------------------------------------------------------
    def find_effects(self, node: Optional[Hashable] = None,
                     table: Optional[str] = None,
                     address: Optional[Hashable] = None,
                     action: Optional[str] = None
                     ) -> List[Tuple[Span, Effect]]:
        """Every (span, effect) matching the filters, in span order.
        Node/address comparisons are by string form (JSONL-stable)."""
        matches = []
        for span in self.spans():
            for effect in span.effects:
                if node is not None and str(effect.node) != str(node):
                    continue
                if table is not None and effect.table != table:
                    continue
                if address is not None and \
                        str(effect.address) != str(address):
                    continue
                if action is not None and effect.action != action:
                    continue
                matches.append((span, effect))
        return matches

    def last_effect(self, **filters: Any) -> Optional[Tuple[Span, Effect]]:
        """The most recent matching (span, effect), if any."""
        matches = self.find_effects(**filters)
        return matches[-1] if matches else None

    def spans_for_trace(self, trace_id: str) -> List[Span]:
        """Every span of one trace, in creation order."""
        return [s for s in self.spans() if s.trace_id == trace_id]

    def spans_about(self, subject: Hashable) -> List[Span]:
        """Spans whose origin or target stringifies to ``subject`` —
        the coarse "anything about node X / receiver r" query."""
        wanted = str(subject)
        return [s for s in self.spans()
                if str(s.node) == wanted or str(s.target) == wanted]

    def traces(self) -> Iterator[str]:
        """Distinct trace ids, in first-seen order."""
        seen = set()
        for span in self.spans():
            if span.trace_id not in seen:
                seen.add(span.trace_id)
                yield span.trace_id

    def __repr__(self) -> str:
        return f"SpanDag(spans={len(self._spans)}, roots={len(self.roots())})"
