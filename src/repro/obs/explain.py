"""The explain engine: turn a span DAG into human-readable causal
chains for table entries and oracle violations.

Given "why does router X have MFT entry Y for channel C" — or an
oracle violation carrying that context — the engine finds the last
span whose effects touched that table slot, walks the DAG backwards to
the origin event, and renders the chain::

    r2.join@t=3 -> intercepted by R5 (join rule 3) -> R5.tree(R5)@t=4
        -> fusion suppressed -> stale branch

Violations are accessed **duck-typed** (``kind`` / ``subject`` /
``data`` attributes looked up with ``getattr``): the obs layer never
imports :mod:`repro.verify`, so layering stays acyclic while
``verify/oracle.py`` can still hand its violations straight in.
Explanations are never empty — when the DAG holds no relevant span the
engine says so explicitly (itself a diagnostic: the state predates the
retained window or tracing was off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, List, Mapping, Optional, Tuple

from repro.obs.causal import Effect, Span, SpanDag
from repro.obs.flight import FlightRecorder

ARROW = " -> "


@dataclass(frozen=True, slots=True)
class Explanation:
    """A rendered causal chain plus the spans it was built from."""

    query: str
    steps: Tuple[str, ...]
    spans: Tuple[Span, ...] = field(default=(), compare=False)

    @property
    def found(self) -> bool:
        """Whether the DAG actually held a relevant causal chain."""
        return bool(self.spans)

    def render(self) -> str:
        """One-line query header plus the arrow-joined chain.  Always
        non-empty, even when nothing matched."""
        chain = ARROW.join(self.steps) if self.steps else "(no steps)"
        return f"{self.query}: {chain}"


def _step(span: Span, child: Optional[Span]) -> str:
    """Render one span as a chain step; if its outcome hands off to the
    next span in the chain, fold the outcome into the same step."""
    text = span.label()
    if span.outcome:
        text += f" [{span.outcome}]"
    return text


class Explainer:
    """Walks a :class:`SpanDag` backwards to answer causal queries."""

    def __init__(self, dag: SpanDag,
                 flight: Optional[FlightRecorder] = None) -> None:
        self.dag = dag
        self.flight = flight

    # ------------------------------------------------------------------
    # Core query: why does this table entry exist?
    # ------------------------------------------------------------------
    def explain_entry(self, node: Hashable, table: str,
                      address: Hashable) -> Explanation:
        """Causal chain behind "node X has <table> entry <address>"."""
        query = f"why {node}.{table}[{address}]"
        match = self.dag.last_effect(node=node, table=table, address=address)
        if match is None:
            return self._missing(query,
                                 f"no recorded effect on {node}.{table}"
                                 f"[{address}]")
        span, effect = match
        return self._chain(query, span, effect)

    def explain_span(self, span: Span) -> Explanation:
        """Causal chain ending at (and including) one span."""
        return self._chain(f"how {span.label()}", span, None)

    def _chain(self, query: str, span: Span,
               effect: Optional[Effect]) -> Explanation:
        ancestry = self.dag.ancestry(span)
        steps: List[str] = []
        for i, link in enumerate(ancestry):
            child = ancestry[i + 1] if i + 1 < len(ancestry) else None
            steps.append(_step(link, child))
        if effect is not None:
            steps.append(str(effect))
        return Explanation(query=query, steps=tuple(steps),
                           spans=tuple(ancestry))

    def _missing(self, query: str, why: str) -> Explanation:
        hint = ("tracing was disabled or the span ring evicted it"
                if len(self.dag) == 0
                else f"{len(self.dag)} spans retained, none match")
        return Explanation(query=query, steps=(f"unexplained: {why}",
                                               f"({hint})"))

    # ------------------------------------------------------------------
    # Violations (duck-typed: obs never imports verify)
    # ------------------------------------------------------------------
    def explain_violation(self, violation: Any) -> Explanation:
        """Causal chain behind an oracle violation.  Reads ``kind`` /
        ``subject`` / ``data`` with ``getattr``; the richer the
        ``data`` mapping (node/table/address keys, as the oracle
        checkers attach), the sharper the chain."""
        kind = getattr(violation, "kind", "violation")
        subject = getattr(violation, "subject", None)
        data = getattr(violation, "data", None) or {}
        query = f"{kind}({subject})"

        node = data.get("node") if isinstance(data, Mapping) else None
        table = data.get("table") if isinstance(data, Mapping) else None
        address = data.get("address") if isinstance(data, Mapping) else None
        if node is not None and table is not None and address is not None:
            chain = self.explain_entry(node, table, address)
            return Explanation(query=query, steps=chain.steps,
                               spans=chain.spans)

        # No table coordinates: fall back to the last span touching the
        # violation's subject (a receiver, a node, a path segment).
        for candidate in self._subjects(subject, data):
            spans = self.dag.spans_about(candidate)
            if spans:
                chain = self.explain_span(spans[-1])
                return Explanation(query=query, steps=chain.steps,
                                   spans=chain.spans)
        return self._missing(query, f"no span about {subject!r}")

    @staticmethod
    def _subjects(subject: Any, data: Any) -> List[Any]:
        candidates: List[Any] = []
        if isinstance(data, Mapping):
            for key in ("receiver", "node", "head", "tail"):
                if key in data:
                    candidates.append(data[key])
        if isinstance(subject, (list, tuple)):
            candidates.extend(subject)
        elif subject is not None:
            candidates.append(subject)
        return candidates

    # ------------------------------------------------------------------
    # Flight-recorder context
    # ------------------------------------------------------------------
    def context(self, channel: str, span: Span) -> List[str]:
        """Rendered table snapshots bracketing a span, when the flight
        recorder has them — the before/after state around one walk."""
        if self.flight is None:
            return []
        before, after = self.flight.snapshots_around(channel, span.span_id)
        lines = []
        if before is not None:
            lines.append(f"before: {before.render()}")
        if after is not None:
            lines.append(f"after:  {after.render()}")
        return lines
