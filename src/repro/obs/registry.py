"""The metrics registry: counters, gauges and histograms with labels.

One :class:`MetricsRegistry` holds every metric of one measurement
context (a network, a Monte-Carlo sweep, a benchmark).  Metrics are
identified by a name plus a sorted label set — the conventional labels
in this library are ``protocol`` (``hbh``, ``reunite``, ``pim-sm``,
``pim-ss``), ``channel`` (the paper's ``<S,G>`` pair, rendered by
:func:`channel_label`) and ``kind`` (``data``/``control`` traffic).

Three instrument kinds, mirroring the usual time-series model:

- **Counter** — monotonically increasing total (packet copies sent,
  control messages processed).  ``reset()`` on the owning subsystem
  does *not* rewind counters; they are cumulative by design.
- **Gauge** — a value that can go anywhere (current group size).
- **Histogram** — a distribution with count/sum/min/max and
  nearest-rank percentiles (p50/p95/p99) — per-receiver delay, tree
  cost per measured packet, convergence rounds per join.

Snapshots are plain JSON-compatible dicts so sweep archives
(:mod:`repro.experiments.storage`) can persist metrics alongside
results and CI can diff them across runs.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.errors import ReproError

LabelKey = Tuple[Tuple[str, str], ...]


class MetricsError(ReproError):
    """A metric was re-registered under a different instrument kind."""


def channel_label(source: object, group: object = "G") -> str:
    """Render the paper's ``<S,G>`` channel identifier as a label value.

    The reproduction keys channels by source (source-specific groups),
    so the group component defaults to the symbolic ``G``.
    """
    return f"<{source},{group}>"


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise MetricsError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def snapshot(self) -> Dict[str, float]:
        return {"value": self.value}


class Gauge:
    """A point-in-time value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, float]:
        return {"value": self.value}


class Histogram:
    """A recorded distribution with nearest-rank percentiles.

    Observations are kept exactly (the library's sweeps record at most
    tens of thousands of points per metric); percentile queries sort
    lazily and cache until the next observation.
    """

    __slots__ = ("_values", "_sorted")

    def __init__(self) -> None:
        self._values: List[float] = []
        self._sorted = False

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(float(value))
        self._sorted = False

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        return self.sum / len(self._values) if self._values else 0.0

    @property
    def min(self) -> float:
        return min(self._values) if self._values else 0.0

    @property
    def max(self) -> float:
        return max(self._values) if self._values else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in [0, 100]."""
        if not 0 <= q <= 100:
            raise MetricsError(f"percentile must be in [0, 100], got {q}")
        if not self._values:
            return 0.0
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = max(1, math.ceil(q / 100.0 * len(self._values)))
        return self._values[rank - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def extend(self, values: List[float]) -> None:
        self._values.extend(float(v) for v in values)
        self._sorted = False

    def values(self) -> List[float]:
        """The raw observations (a copy, in observation-or-sorted order)."""
        return list(self._values)

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "values": self.values(),
        }


Instrument = Union[Counter, Gauge, Histogram]

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create store of labeled counters, gauges and histograms."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Dict[LabelKey, Instrument]] = {}
        self._kind: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Instrument access (get-or-create; kind conflicts raise)
    # ------------------------------------------------------------------
    def _instrument(self, kind: str, name: str,
                    labels: Mapping[str, object]) -> Instrument:
        registered = self._kind.get(name)
        if registered is None:
            self._kind[name] = kind
            self._metrics[name] = {}
        elif registered != kind:
            raise MetricsError(
                f"metric {name!r} is a {registered}, requested as {kind}"
            )
        series = self._metrics[name]
        key = _label_key(labels)
        instrument = series.get(key)
        if instrument is None:
            instrument = _KINDS[kind]()
            series[key] = instrument
        return instrument

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter ``name`` for this label set (created on demand)."""
        instrument = self._instrument("counter", name, labels)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge ``name`` for this label set (created on demand)."""
        instrument = self._instrument("gauge", name, labels)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(self, name: str, **labels: object) -> Histogram:
        """The histogram ``name`` for this label set (created on demand)."""
        instrument = self._instrument("histogram", name, labels)
        assert isinstance(instrument, Histogram)
        return instrument

    # ------------------------------------------------------------------
    # One-shot convenience recorders
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0, **labels: object) -> None:
        """Increment the counter ``name`` by ``amount``."""
        self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge ``name`` to ``value``."""
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record ``value`` into the histogram ``name``."""
        self.histogram(name, **labels).observe(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def kind_of(self, name: str) -> Optional[str]:
        """The instrument kind of ``name`` (None if never recorded)."""
        return self._kind.get(name)

    def names(self) -> List[str]:
        """All metric names, sorted."""
        return sorted(self._metrics)

    def collect(self, prefix: str = ""
                ) -> Iterator[Tuple[str, Dict[str, str], Instrument]]:
        """Iterate ``(name, labels, instrument)`` sorted by name+labels."""
        for name in self.names():
            if prefix and not name.startswith(prefix):
                continue
            for key in sorted(self._metrics[name]):
                yield name, dict(key), self._metrics[name][key]

    def value(self, name: str, **labels: object) -> float:
        """Counter/gauge value or histogram mean for one label set.

        Raises :class:`MetricsError` when the series does not exist —
        reading must never silently create an empty instrument.
        """
        series = self._metrics.get(name)
        key = _label_key(labels)
        if series is None or key not in series:
            raise MetricsError(f"no series {name!r} with labels {dict(key)}")
        instrument = series[key]
        if isinstance(instrument, Histogram):
            return instrument.mean
        return instrument.value

    def __len__(self) -> int:
        return sum(len(series) for series in self._metrics.values())

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop every metric (a fresh registry)."""
        self._metrics.clear()
        self._kind.clear()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry.

        Counters add, histograms pool their observations, gauges take
        the other registry's (latest) value.
        """
        for name, labels, instrument in other.collect():
            if isinstance(instrument, Counter):
                self.counter(name, **labels).inc(instrument.value)
            elif isinstance(instrument, Gauge):
                self.gauge(name, **labels).set(instrument.value)
            else:
                self.histogram(name, **labels).extend(instrument.values())

    def merge_snapshot(self, data: Mapping[str, object]) -> None:
        """Fold a :meth:`snapshot` dump into this registry.

        Same semantics as :meth:`merge` (counters add, histograms pool,
        gauges take the snapshot's value) but straight from the
        JSON-compatible form, which is how worker processes hand their
        per-run metrics back to the parallel sweep executor — folding
        payloads in run-index order reproduces exactly the registry a
        serial sweep records.
        """
        for name, raw in data.items():
            assert isinstance(raw, Mapping)
            kind = raw["kind"]
            for entry in raw["series"]:  # type: ignore[index]
                labels = entry["labels"]
                if kind == "counter":
                    self.counter(name, **labels).inc(entry["value"])
                elif kind == "gauge":
                    self.gauge(name, **labels).set(entry["value"])
                elif kind == "histogram":
                    self.histogram(name, **labels).extend(entry["values"])
                else:
                    raise MetricsError(f"unknown instrument kind {kind!r}")

    # ------------------------------------------------------------------
    # Serialization (JSON-compatible)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A JSON-compatible dump of every series."""
        dump: Dict[str, object] = {}
        for name in self.names():
            series = []
            for key in sorted(self._metrics[name]):
                instrument = self._metrics[name][key]
                series.append({"labels": dict(key), **instrument.snapshot()})
            dump[name] = {"kind": self._kind[name], "series": series}
        return dump

    @classmethod
    def from_snapshot(cls, data: Mapping[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output."""
        registry = cls()
        registry.merge_snapshot(data)
        return registry

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, prefix: str = "") -> str:
        """A fixed-width text table of every series (CLI reporting)."""
        lines = [f"{'metric':<28} {'labels':<34} {'value / distribution'}"]
        lines.append("-" * 100)
        for name, labels, instrument in self.collect(prefix):
            label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            if isinstance(instrument, Histogram):
                value_text = (
                    f"n={instrument.count} mean={instrument.mean:.2f} "
                    f"p50={instrument.p50:.2f} p95={instrument.p95:.2f} "
                    f"p99={instrument.p99:.2f}"
                )
            else:
                value_text = f"{instrument.value:.2f}"
            lines.append(f"{name:<28} {label_text:<34} {value_text}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"MetricsRegistry(metrics={len(self._metrics)}, series={len(self)})"
