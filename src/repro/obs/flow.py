"""Data-plane flow telemetry: sampled flow records, link utilization
series, and per-channel delivery SLOs.

The paper's headline metrics are *traffic* metrics — tree cost is "the
number of copies of the same packet transmitted in the network links"
(§4.2.1) — yet until now the data plane exposed only the two aggregate
:class:`~repro.netsim.stats.LinkCounters` tallies.  This module is the
sFlow/IPFIX analogue for the simulated data plane:

- :class:`FlowTelemetry` taps ``Network._on_transmit`` (event plane)
  and :meth:`observe_distribution` (the uniform
  :class:`~repro.metrics.distribution.DataDistribution` seam both
  planes share) to produce deterministic 1-in-N sampled **flow
  records** — channel, stream/sequence, hop path, per-hop timestamps,
  TTL spent, outcome (``delivered``/``dropped``/``duplicated``) — kept
  in a ring (oldest evicted first, counted in
  :attr:`FlowTelemetry.dropped` and the ``flow.dropped`` counter) and
  archived as sorted-key JSONL through the same
  :func:`~repro.obs.timeline.write_events_jsonl` code path as timeline
  events, which is what makes archives byte-identical across
  ``--jobs``.
- **per-link utilization series**: packet copies and weighted cost per
  fixed sim-time bucket, split data vs control, rendered by
  :func:`render_link_heatmap` / :func:`render_hot_links`.
- a **per-channel SLO scoreboard** (:func:`slo_rows` +
  :func:`render_slo_table`): delivery-delay p50/p95/p99, loss and
  duplication rates, path stretch vs the unicast shortest path, and
  the traffic-concentration ratio (multicast copies vs what all-unicast
  delivery would have cost) — all fed into a
  :class:`~repro.obs.registry.MetricsRegistry` (``flow.delay``,
  ``flow.stretch``, ``flow.concentration``, ``link.util.*``) so they
  export through OpenMetrics and merge across sweep workers exactly
  like every other metric.

**Determinism contract.**  Sampling must not depend on arrival order,
process identity or ``PYTHONHASHSEED``: the sample decision for a
(protocol, channel, receiver) triple is ``crc32`` of a string key
mixed with a salt drawn via :func:`~repro._rand.derive_rng` (string
seeds hash with SHA-512 — process-stable), so the *same* receivers are
sampled in every worker layout and every hash-seed environment.

The plane is **off by default and off the hot path**: owners hold a
``FlowTelemetry(enabled=False)`` and guard every call site with the
single ``enabled`` attribute check causal tracing and the timeline
already pay, so benchmarked sweeps add one boolean test per
transmission (locked by ``test_link_transmit_disabled_flow``).

This module sits in the obs layer: besides the registry and the
timeline's archival helper it imports only :mod:`repro._rand` (pure
stdlib helpers beneath every layer), so netsim, the protocol drivers
and the experiment harness can all instrument themselves without
import cycles.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import (
    Any,
    Deque,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)
from collections import deque

from repro._rand import derive_rng, make_rng
from repro.obs.registry import Counter, Histogram, MetricsRegistry
from repro.obs.timeline import PathOrFile, write_events_jsonl

NodeId = Hashable

# ----------------------------------------------------------------------
# Vocabulary (tests and the flows CLI rely on these names)
# ----------------------------------------------------------------------
DELIVERED = "delivered"
DROPPED = "dropped"
DUPLICATED = "duplicated"

DATA = "data"
CONTROL = "control"

#: Default sim-time width of one utilization bucket.  The event plane
#: stamps real sim seconds; the static planes stamp measurement time
#: plus intra-tree propagation, so one measurement lands in one or two
#: buckets — the heatmap degrades gracefully to a per-link bar chart.
DEFAULT_BUCKET = 50.0

_SCALARS = (str, int, float, bool, type(None))


def _jsonable(value: Any) -> Any:
    return value if isinstance(value, _SCALARS) else repr(value)


@dataclass(frozen=True, slots=True)
class FlowRecord:
    """One sampled flow: how one packet fared for one receiver.

    ``seq`` is the per-telemetry emission index (the deterministic
    total order); ``t`` is the observation's sim time.  ``path`` is the
    hop chain source..receiver (empty when unknown — e.g. the receiver
    was never reached), ``hop_t`` the cumulative arrival time at each
    hop, and ``ttl`` the hop count spent.  ``copies`` counts arrivals
    at the receiver (>1 means duplicate delivery).  ``stream`` and
    ``sequence`` identify the packet on the event plane; the static
    planes measure one probe packet and leave them unset.
    """

    seq: int
    t: float
    protocol: str
    channel: str
    receiver: Any
    outcome: str
    delay: Optional[float] = None
    stretch: Optional[float] = None
    ttl: Optional[int] = None
    path: Tuple[Any, ...] = ()
    hop_t: Tuple[float, ...] = ()
    copies: int = 1
    stream: Optional[int] = None
    sequence: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible projection (one JSONL line)."""
        out: Dict[str, Any] = {
            "seq": self.seq,
            "t": self.t,
            "protocol": self.protocol,
            "channel": self.channel,
            "receiver": _jsonable(self.receiver),
            "outcome": self.outcome,
        }
        if self.delay is not None:
            out["delay"] = self.delay
        if self.stretch is not None:
            out["stretch"] = self.stretch
        if self.ttl is not None:
            out["ttl"] = self.ttl
        if self.path:
            out["path"] = [_jsonable(node) for node in self.path]
        if self.hop_t:
            out["hop_t"] = list(self.hop_t)
        if self.copies != 1:
            out["copies"] = self.copies
        if self.stream is not None:
            out["stream"] = self.stream
        if self.sequence is not None:
            out["sequence"] = self.sequence
        return out

    def __str__(self) -> str:
        delay = "" if self.delay is None else f" delay={self.delay:g}"
        hops = "" if self.ttl is None else f" ttl={self.ttl}"
        return (f"t={self.t:g} [{self.protocol} {self.channel}] "
                f"{self.receiver}: {self.outcome}{delay}{hops}")


class _UtilCell:
    """Copies and weighted cost on one directed link in one bucket."""

    __slots__ = ("src", "dst", "kind", "bucket", "copies", "cost")

    def __init__(self, src: Any, dst: Any, kind: str, bucket: int) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.bucket = bucket
        self.copies = 0
        self.cost = 0.0


def reconstruct_paths(
    transmissions: Iterable[Tuple[NodeId, NodeId]],
    costs: Iterable[float],
    source: NodeId,
) -> Tuple[Dict[NodeId, float], Dict[NodeId, NodeId]]:
    """Earliest-arrival times and predecessor chains over the recorded
    link crossings.

    Works from the crossings alone (no topology), so it serves both
    planes: the static drivers emit crossings in propagation order, the
    event plane reports them as unordered per-link counts.  The result
    is order-independent — relaxation runs to fixpoint, ties broken by
    first-recorded predecessor — which keeps archives byte-identical
    regardless of emission order.
    """
    edges = list(zip(transmissions, costs))
    arrival: Dict[NodeId, float] = {source: 0.0}
    pred: Dict[NodeId, NodeId] = {}
    # Bellman-Ford-style passes: paths are at most len(edges) hops.
    for _ in range(len(edges) + 1):
        changed = False
        for (src, dst), cost in edges:
            t_src = arrival.get(src)
            if t_src is None:
                continue
            t_dst = t_src + cost
            previous = arrival.get(dst)
            if previous is None or t_dst < previous - 1e-12:
                arrival[dst] = t_dst
                pred[dst] = src
                changed = True
        if not changed:
            break
    return arrival, pred


def _path_to(pred: Mapping[NodeId, NodeId], source: NodeId,
             receiver: NodeId) -> List[NodeId]:
    """Walk the predecessor chain receiver -> source (empty when the
    chain is broken or cyclic)."""
    chain: List[NodeId] = [receiver]
    seen = {receiver}
    node = receiver
    while node != source:
        parent = pred.get(node)
        if parent is None or parent in seen:
            return []
        chain.append(parent)
        seen.add(parent)
        node = parent
    chain.reverse()
    return chain


class FlowTelemetry:
    """Records sampled flow records and link utilization while enabled.

    ``sample_every`` keeps 1-in-N (protocol, channel, receiver) flows;
    ``maxlen`` bounds record memory like a ring buffer — the oldest
    records are evicted first and counted in :attr:`dropped` (and,
    when a ``registry`` is attached, the ``flow.dropped`` counter).
    ``seed`` (int or string) feeds the sampling salt through
    :func:`~repro._rand.derive_rng` so the sampled subset is stable
    across processes and ``PYTHONHASHSEED`` values.
    """

    def __init__(self, enabled: bool = False, sample_every: int = 1,
                 maxlen: Optional[int] = 65536,
                 registry: Optional[MetricsRegistry] = None,
                 seed: int = 0, bucket: float = DEFAULT_BUCKET) -> None:
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}")
        if bucket <= 0:
            raise ValueError(f"bucket width must be > 0, got {bucket}")
        self.enabled = enabled
        self.sample_every = int(sample_every)
        self.maxlen = maxlen
        self.registry = registry
        self.bucket = float(bucket)
        self.dropped = 0
        self._records: Deque[FlowRecord] = deque()
        self._next_seq = 1
        self._salt = derive_rng(make_rng(seed), "flow.sample").getrandbits(32)
        self._util: Dict[Tuple[str, str, str, int], _UtilCell] = {}

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sampled(self, protocol: str, channel: str, receiver: Any) -> bool:
        """Whether this flow is in the deterministic 1-in-N sample.

        The decision hashes a *string* key with ``crc32`` (never
        ``hash()``, which ``PYTHONHASHSEED`` salts), so every worker
        process keeps exactly the same flows.
        """
        if self.sample_every <= 1:
            return True
        key = f"{self._salt}/{protocol}/{channel}/{receiver}"
        return zlib.crc32(key.encode()) % self.sample_every == 0

    def _append(self, record: FlowRecord) -> FlowRecord:
        self._records.append(record)
        if self.maxlen is not None and len(self._records) > self.maxlen:
            self._records.popleft()
            self.dropped += 1
            if self.registry is not None:
                self.registry.inc("flow.dropped")
        return record

    # ------------------------------------------------------------------
    # Event-plane taps (callers guard with ``enabled`` — slow path here)
    # ------------------------------------------------------------------
    def record_transmit(self, t: float, src: Any, dst: Any, cost: float,
                        kind: str = DATA) -> None:
        """One packet copy crossed the directed link src->dst at sim
        time ``t`` (the ``Network._on_transmit`` tap; ``kind`` is
        ``"data"`` or ``"control"``)."""
        index = int(t // self.bucket)
        key = (str(src), str(dst), kind, index)
        cell = self._util.get(key)
        if cell is None:
            cell = self._util[key] = _UtilCell(
                _jsonable(src), _jsonable(dst), kind, index)
        cell.copies += 1
        cell.cost += cost
        registry = self.registry
        if registry is not None:
            link = f"{src}->{dst}"
            registry.inc("link.util.copies", 1.0, link=link, kind=kind)
            registry.inc("link.util.cost", cost, link=link, kind=kind)

    def record_delivery(self, t: float, protocol: str, channel: str,
                        receiver: Any, delay: float,
                        stream: Optional[int] = None,
                        sequence: Optional[int] = None,
                        duplicate: bool = False) -> Optional[FlowRecord]:
        """A receiver got a data packet (the receiver-agent tap).

        Live deliveries feed the ``flow.delivery.delay`` histogram —
        kept separate from ``flow.delay`` so measured distributions
        (which also see these deliveries) are not double counted — and
        sampled ones become flow records carrying stream/sequence (the
        hop path is unknown at the receiver; measured records carry
        it).
        """
        registry = self.registry
        if registry is not None:
            registry.observe("flow.delivery.delay", delay,
                             protocol=protocol, channel=channel)
            if duplicate:
                registry.inc("flow.delivery.duplicates",
                             protocol=protocol, channel=channel)
        if not self.sampled(protocol, channel, receiver):
            return None
        record = FlowRecord(
            seq=self._next_seq, t=t, protocol=protocol, channel=channel,
            receiver=_jsonable(receiver),
            outcome=DUPLICATED if duplicate else DELIVERED,
            delay=delay, copies=2 if duplicate else 1,
            stream=stream, sequence=sequence,
        )
        self._next_seq += 1
        return self._append(record)

    # ------------------------------------------------------------------
    # The uniform measurement seam (both planes)
    # ------------------------------------------------------------------
    def observe_distribution(self, protocol: str, channel: str,
                             distribution: Any, routing: Any = None,
                             source: Any = None, t: float = 0.0,
                             util: bool = True) -> List[FlowRecord]:
        """Digest one measured
        :class:`~repro.metrics.distribution.DataDistribution`.

        Emits one flow record per sampled expected receiver (outcome,
        delay, hop path with per-hop timestamps reconstructed from the
        recorded link crossings), feeds the per-channel SLO metrics
        (``flow.delay``/``flow.stretch``/``flow.concentration`` plus
        the delivered/lost/duplicated counters) and, when ``util`` is
        true, tallies the crossings into the utilization series at
        ``t`` plus intra-tree propagation time.  Pass ``util=False``
        when a live ``record_transmit`` tap already saw the crossings
        (the event plane), or the link series would double count.

        ``routing`` (a :class:`~repro.routing.tables.UnicastRouting`,
        duck-typed to keep the obs layer leaf-clean) provides the
        unicast shortest-path baselines for stretch and concentration;
        without it both are skipped.  Receivers are visited in sorted
        string order, so record emission is deterministic.
        """
        transmissions = list(distribution.transmissions)
        costs = list(distribution.transmission_costs)
        if source is None:
            origins = ({a for a, _ in transmissions}
                       - {b for _, b in transmissions})
            roots = sorted(origins, key=str)
            source = roots[0] if roots else None
        arrival: Dict[NodeId, float] = {}
        pred: Dict[NodeId, NodeId] = {}
        if source is not None:
            arrival, pred = reconstruct_paths(transmissions, costs, source)
        delays: Dict[NodeId, float] = dict(distribution.delays)
        arrivals: Dict[NodeId, int] = dict(distribution.arrivals)
        expected = set(distribution.expected) | set(delays)
        registry = self.registry
        out: List[FlowRecord] = []
        unicast_copies = 0
        for receiver in sorted(expected, key=str):
            delay = delays.get(receiver)
            copies_got = arrivals.get(receiver, 0)
            if delay is None:
                outcome = DROPPED
            elif copies_got > 1:
                outcome = DUPLICATED
            else:
                outcome = DELIVERED
            stretch: Optional[float] = None
            if (delay is not None and routing is not None
                    and source is not None and receiver != source):
                try:
                    shortest = routing.distance(source, receiver)
                except Exception:
                    shortest = 0.0
                if shortest > 0:
                    stretch = delay / shortest
            if routing is not None and source is not None:
                try:
                    hops = len(routing.path_tuple(source, receiver)) - 1
                except Exception:
                    hops = 0
                unicast_copies += max(hops, 0)
            path: Tuple[Any, ...] = ()
            hop_t: Tuple[float, ...] = ()
            if source is not None and receiver in arrival:
                chain = _path_to(pred, source, receiver)
                path = tuple(chain)
                hop_t = tuple(arrival[node] for node in chain)
            if registry is not None:
                if outcome == DROPPED:
                    registry.inc("flow.lost", protocol=protocol,
                                 channel=channel)
                else:
                    registry.inc("flow.delivered", protocol=protocol,
                                 channel=channel)
                    registry.observe("flow.delay", delay or 0.0,
                                     protocol=protocol, channel=channel)
                    if stretch is not None:
                        registry.observe("flow.stretch", stretch,
                                         protocol=protocol, channel=channel)
                    if outcome == DUPLICATED:
                        registry.inc("flow.duplicated", protocol=protocol,
                                     channel=channel)
            if self.sampled(protocol, channel, receiver):
                record = FlowRecord(
                    seq=self._next_seq, t=t, protocol=protocol,
                    channel=channel, receiver=_jsonable(receiver),
                    outcome=outcome, delay=delay, stretch=stretch,
                    ttl=max(len(path) - 1, 0) if path else None,
                    path=path, hop_t=hop_t, copies=copies_got,
                )
                self._next_seq += 1
                out.append(self._append(record))
        if registry is not None:
            copies = int(distribution.copies)
            registry.inc("flow.copies", float(copies), protocol=protocol,
                         channel=channel)
            if unicast_copies > 0:
                registry.observe("flow.concentration",
                                 copies / unicast_copies,
                                 protocol=protocol, channel=channel)
        if util:
            for (src, dst), cost in zip(transmissions, costs):
                self.record_transmit(t + arrival.get(src, 0.0), src, dst,
                                     cost, DATA)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def records(self) -> List[FlowRecord]:
        """All retained records, in emission order."""
        return list(self._records)

    def record_dicts(self) -> List[Dict[str, Any]]:
        """JSON-compatible projections of every retained record (how
        worker processes hand flow samples back to the executor)."""
        return [record.to_dict() for record in self._records]

    def util_rows(self) -> List[Dict[str, Any]]:
        """The utilization series as sorted JSON-compatible rows (one
        per directed link / kind / bucket)."""
        rows = []
        for key in sorted(self._util):
            cell = self._util[key]
            rows.append({
                "src": cell.src,
                "dst": cell.dst,
                "kind": cell.kind,
                "bucket": cell.bucket,
                "t0": cell.bucket * self.bucket,
                "copies": cell.copies,
                "cost": cell.cost,
            })
        return rows

    def slo_rows(self) -> List[Dict[str, Any]]:
        """Per-channel SLO scoreboard rows from the attached registry
        (empty when no registry is attached)."""
        if self.registry is None:
            return []
        return slo_rows(self.registry)

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        """Drop retained records and the utilization series (seq keeps
        increasing; ``dropped`` counts ring evictions, not clears)."""
        self._records.clear()
        self._util.clear()

    # ------------------------------------------------------------------
    # Archival
    # ------------------------------------------------------------------
    def to_jsonl(self, target: PathOrFile) -> int:
        """Write the retained records as sorted-key JSON lines."""
        return write_events_jsonl(self.record_dicts(), target)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (f"FlowTelemetry({state}, records={len(self._records)}, "
                f"sample_every={self.sample_every}, dropped={self.dropped})")


# ----------------------------------------------------------------------
# SLO scoreboard (registry -> rows; merges like any other metric)
# ----------------------------------------------------------------------
def slo_rows(registry: MetricsRegistry) -> List[Dict[str, Any]]:
    """Assemble the per-channel SLO scoreboard from ``flow.*`` metrics.

    Works on any registry — a live one, or one merged from sweep-worker
    snapshots in run-index order — so the scoreboard is byte-identical
    across ``--jobs`` for free.  Rows are sorted by (protocol, channel).
    """
    rows: Dict[Tuple[str, str], Dict[str, Any]] = {}

    def row_for(labels: Mapping[str, str]) -> Optional[Dict[str, Any]]:
        protocol = labels.get("protocol")
        channel = labels.get("channel")
        if protocol is None or channel is None:
            return None
        key = (protocol, channel)
        row = rows.get(key)
        if row is None:
            row = rows[key] = {
                "protocol": protocol, "channel": channel,
                "expected": 0, "delivered": 0, "lost": 0, "duplicated": 0,
                "loss_rate": 0.0, "dup_rate": 0.0, "copies": 0,
                "delay_p50": 0.0, "delay_p95": 0.0, "delay_p99": 0.0,
                "stretch_p50": 0.0, "stretch_max": 0.0,
                "concentration": 0.0,
            }
        return row

    for name, labels, instrument in registry.collect("flow."):
        row = row_for(labels)
        if row is None:
            continue
        if name == "flow.delivered" and isinstance(instrument, Counter):
            row["delivered"] = int(instrument.value)
        elif name == "flow.lost" and isinstance(instrument, Counter):
            row["lost"] = int(instrument.value)
        elif name == "flow.duplicated" and isinstance(instrument, Counter):
            row["duplicated"] = int(instrument.value)
        elif name == "flow.copies" and isinstance(instrument, Counter):
            row["copies"] = int(instrument.value)
        elif name == "flow.delay" and isinstance(instrument, Histogram):
            row["delay_p50"] = instrument.p50
            row["delay_p95"] = instrument.p95
            row["delay_p99"] = instrument.p99
        elif name == "flow.stretch" and isinstance(instrument, Histogram):
            row["stretch_p50"] = instrument.p50
            row["stretch_max"] = instrument.max
        elif name == "flow.concentration" and isinstance(instrument,
                                                         Histogram):
            row["concentration"] = instrument.mean
    out = []
    for key in sorted(rows):
        row = rows[key]
        expected = row["delivered"] + row["lost"]
        row["expected"] = expected
        if expected:
            row["loss_rate"] = row["lost"] / expected
            row["dup_rate"] = row["duplicated"] / expected
        out.append(row)
    return out


def merge_util_rows(rows: Iterable[Mapping[str, Any]]
                    ) -> List[Dict[str, Any]]:
    """Fold utilization rows (e.g. from several sweep workers) by
    (link, kind, bucket), summing copies and cost; returns sorted rows.
    Fold order does not affect the result, so ``--jobs`` layouts agree.
    """
    merged: Dict[Tuple[str, str, str, int], Dict[str, Any]] = {}
    for row in rows:
        key = (str(row["src"]), str(row["dst"]), str(row["kind"]),
               int(row["bucket"]))
        cell = merged.get(key)
        if cell is None:
            merged[key] = dict(row)
        else:
            cell["copies"] += row["copies"]
            cell["cost"] += row["cost"]
    return [merged[key] for key in sorted(merged)]


# ----------------------------------------------------------------------
# Rendering (CLI reports)
# ----------------------------------------------------------------------
#: Intensity ramp for heatmap cells, lightest to darkest.
HEAT_SHADES = " .:-=+*#%@"


def _link_totals(rows: Iterable[Mapping[str, Any]]
                 ) -> Dict[Tuple[str, str], Dict[str, float]]:
    totals: Dict[Tuple[str, str], Dict[str, float]] = {}
    for row in rows:
        key = (str(row["src"]), str(row["dst"]))
        entry = totals.setdefault(key, {DATA: 0.0, CONTROL: 0.0, "cost": 0.0})
        entry[str(row["kind"])] = entry.get(str(row["kind"]), 0.0) \
            + row["copies"]
        entry["cost"] += row["cost"]
    return totals


def _hot_link_order(totals: Mapping[Tuple[str, str], Mapping[str, float]]
                    ) -> List[Tuple[str, str]]:
    return sorted(
        totals,
        key=lambda key: (-(totals[key].get(DATA, 0.0)
                           + totals[key].get(CONTROL, 0.0)), key),
    )


def render_link_heatmap(rows: List[Dict[str, Any]], top_k: int = 12,
                        width: int = 48,
                        bucket: float = DEFAULT_BUCKET) -> str:
    """ASCII heatmap: top-K links (rows) x time buckets (columns), cell
    intensity scaled to the busiest cell.  Data and control copies both
    heat a cell; the per-row legend splits them out."""
    if not rows:
        return "link heatmap: no utilization recorded"
    totals = _link_totals(rows)
    order = _hot_link_order(totals)[:top_k]
    buckets = sorted({int(row["bucket"]) for row in rows})
    lo, hi = buckets[0], buckets[-1]
    span = hi - lo + 1
    group = max(1, -(-span // width))  # ceil: buckets per column
    columns = -(-span // group)
    cells: Dict[Tuple[Tuple[str, str], int], float] = {}
    for row in rows:
        key = (str(row["src"]), str(row["dst"]))
        if key not in totals:
            continue
        column = (int(row["bucket"]) - lo) // group
        cells[(key, column)] = cells.get((key, column), 0.0) + row["copies"]
    vmax = max((cells.get((key, c), 0.0)
                for key in order for c in range(columns)), default=0.0)
    shades = HEAT_SHADES
    lines = [
        (f"link heatmap — copies per {bucket * group:g}s bucket "
         f"(top {len(order)} of {len(totals)} links, "
         f"t0={lo * bucket:g}s, scale {shades[1:]!r}, "
         f"max cell={vmax:g})"),
    ]
    label_width = max((len(f"{a}->{b}") for a, b in order), default=4)
    for key in order:
        chars = []
        for column in range(columns):
            value = cells.get((key, column), 0.0)
            if value <= 0 or vmax <= 0:
                chars.append(shades[0])
            else:
                index = 1 + int(value / vmax * (len(shades) - 2))
                chars.append(shades[min(index, len(shades) - 1)])
        entry = totals[key]
        label = f"{key[0]}->{key[1]}"
        lines.append(
            f"  {label:>{label_width}} |{''.join(chars)}| "
            f"data={entry.get(DATA, 0.0):g} ctrl={entry.get(CONTROL, 0.0):g} "
            f"cost={entry['cost']:g}"
        )
    return "\n".join(lines)


def render_hot_links(rows: List[Dict[str, Any]], k: int = 10) -> str:
    """Fixed-width top-K hot links table (by total copies)."""
    if not rows:
        return "hot links: no utilization recorded"
    totals = _link_totals(rows)
    order = _hot_link_order(totals)[:k]
    lines = [f"top {len(order)} hot links (of {len(totals)})",
             f"  {'rank':<5} {'link':<18} {'data':>10} {'control':>10} "
             f"{'weighted cost':>14}"]
    for rank, key in enumerate(order, start=1):
        entry = totals[key]
        lines.append(
            f"  {rank:<5} {key[0] + '->' + key[1]:<18} "
            f"{entry.get(DATA, 0.0):>10g} {entry.get(CONTROL, 0.0):>10g} "
            f"{entry['cost']:>14.1f}"
        )
    return "\n".join(lines)


def render_slo_table(rows: List[Dict[str, Any]], top_k: int = 10) -> str:
    """Per-channel SLO scoreboard, grouped by protocol, top-K channels
    by tree cost (copies) within each."""
    if not rows:
        return "flow SLOs: no flow metrics recorded"
    by_protocol: Dict[str, List[Dict[str, Any]]] = {}
    for row in rows:
        by_protocol.setdefault(row["protocol"], []).append(row)
    lines = []
    for protocol in sorted(by_protocol):
        group = sorted(by_protocol[protocol],
                       key=lambda r: (-r["copies"], str(r["channel"])))
        shown = group[:top_k]
        lines.append(f"[{protocol}] per-channel delivery SLOs "
                     f"(top {len(shown)} of {len(group)} channels by copies)")
        lines.append(
            f"  {'channel':<16} {'recv':>5} {'loss%':>6} {'dup%':>6} "
            f"{'p50':>8} {'p95':>8} {'p99':>8} {'stretch':>8} "
            f"{'conc':>6} {'copies':>7}")
        for row in shown:
            lines.append(
                f"  {str(row['channel']):<16} {row['expected']:>5} "
                f"{row['loss_rate'] * 100:>6.1f} {row['dup_rate'] * 100:>6.1f} "
                f"{row['delay_p50']:>8.2f} {row['delay_p95']:>8.2f} "
                f"{row['delay_p99']:>8.2f} {row['stretch_p50']:>8.2f} "
                f"{row['concentration']:>6.2f} {row['copies']:>7}")
    return "\n".join(lines)
