"""The sweep telemetry bus: live per-cell progress events.

Long ``--jobs N`` sweeps used to be a black box until completion; this
module gives them the feedback loop real systems get from streaming
telemetry.  Worker processes put small event dicts on a
``multiprocessing`` queue as cells start and finish; the parent drains
that queue (:class:`QueueListener`) into a :class:`TelemetryBus`, which
keeps the running tallies (done/total, cache hits, retries, per-worker
cell counts), a **merged in-flight registry** (every finished cell's
metrics snapshot folded in as it lands — what the ``--metrics-port``
endpoint serves mid-sweep) and a rolling completion rate for ETA.
The serial backend publishes the *same* events directly, so ``--jobs
1`` and ``--jobs N`` are observably identical: same event types, same
final counts, different interleaving only.

Event schema (plain JSON-compatible dicts; every event has ``type``):

- ``sweep_started``   — ``total`` (cells in the sweep)
- ``cell_started``    — ``key``, ``describe``, ``pid``
- ``cell_finished``   — ``key``, ``describe``, ``pid``, ``seconds``,
  ``metrics`` (the cell's :class:`MetricsRegistry` snapshot, may be None)
- ``cell_cached``     — ``key``, ``describe``, ``source`` (``cache`` or
  ``journal``), ``metrics``
- ``cell_retried``    — ``key``, ``describe``, ``attempts``
- ``sweep_finished``  — ``total``

Subscribers (:class:`LiveProgressView`, tests, exporters) are called
synchronously under the bus lock — keep them fast.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, TextIO, Tuple, TypeVar

from repro.obs.registry import MetricsRegistry

Event = Dict[str, object]
Subscriber = Callable[[Event], None]
T = TypeVar("T")

#: Every event type the bus understands (anything else raises).
EVENT_TYPES = (
    "sweep_started",
    "cell_started",
    "cell_finished",
    "cell_cached",
    "cell_retried",
    "sweep_finished",
)

#: Completions kept in the rolling-rate window behind the ETA.
RATE_WINDOW = 32


def cell_started(key: str, describe: str = "",
                 pid: Optional[int] = None) -> Event:
    """Build a ``cell_started`` event (worker side helper)."""
    return {"type": "cell_started", "key": key, "describe": describe,
            "pid": os.getpid() if pid is None else pid}


def cell_finished(key: str, describe: str = "", seconds: float = 0.0,
                  metrics: Optional[dict] = None,
                  pid: Optional[int] = None) -> Event:
    """Build a ``cell_finished`` event (worker side helper)."""
    return {"type": "cell_finished", "key": key, "describe": describe,
            "seconds": seconds, "metrics": metrics,
            "pid": os.getpid() if pid is None else pid}


class TelemetryBus:
    """Aggregate sweep telemetry events into live, queryable state.

    Thread-safe: the parent's queue-drain thread, the serial execution
    path and the ``--metrics-port`` HTTP handler may all touch the bus
    concurrently.  ``clock`` is injectable for deterministic tests.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._lock = threading.RLock()
        self._clock = clock
        self._subscribers: List[Subscriber] = []
        #: Merged in-flight registry: every finished/cached cell's
        #: metrics snapshot folded in as it lands.
        self.registry = MetricsRegistry()
        self.total = 0
        self.started = 0
        self.finished = 0
        self.cached = 0
        self.journal = 0
        self.retries = 0
        self.in_flight: Dict[str, str] = {}
        #: Cells finished per worker, keyed by stable label (w0, w1, ...)
        #: in first-seen pid order.
        self.per_worker: Dict[str, int] = {}
        self._worker_labels: Dict[int, str] = {}
        self._rate: Deque[Tuple[float, int]] = deque(maxlen=RATE_WINDOW)
        self.events_seen = 0

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def subscribe(self, subscriber: Subscriber) -> None:
        """Register a callback invoked (under the bus lock) per event."""
        with self._lock:
            self._subscribers.append(subscriber)

    def publish(self, event: Event) -> None:
        """Fold one event into the bus state and fan out to subscribers."""
        kind = event.get("type")
        if kind not in EVENT_TYPES:
            raise ValueError(f"unknown telemetry event type {kind!r}")
        with self._lock:
            self.events_seen += 1
            getattr(self, f"_on_{kind}")(event)
            for subscriber in self._subscribers:
                subscriber(event)

    # ------------------------------------------------------------------
    # Event folding
    # ------------------------------------------------------------------
    def _on_sweep_started(self, event: Event) -> None:
        self.total = int(event.get("total", 0))  # type: ignore[arg-type]
        self._rate.append((self._clock(), 0))

    def _on_cell_started(self, event: Event) -> None:
        self.started += 1
        self.in_flight[str(event.get("key"))] = str(event.get("describe", ""))

    def _on_cell_finished(self, event: Event) -> None:
        self.finished += 1
        self.in_flight.pop(str(event.get("key")), None)
        pid = event.get("pid")
        if isinstance(pid, int):
            self.per_worker[self.worker_label(pid)] = (
                self.per_worker.get(self.worker_label(pid), 0) + 1
            )
        metrics = event.get("metrics")
        if isinstance(metrics, dict):
            self.registry.merge_snapshot(metrics)
        self._rate.append((self._clock(), self.done))

    def _on_cell_cached(self, event: Event) -> None:
        if event.get("source") == "journal":
            self.journal += 1
        else:
            self.cached += 1
        metrics = event.get("metrics")
        if isinstance(metrics, dict):
            self.registry.merge_snapshot(metrics)
        self._rate.append((self._clock(), self.done))

    def _on_cell_retried(self, event: Event) -> None:
        self.retries += 1

    def _on_sweep_finished(self, event: Event) -> None:
        pass

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def worker_label(self, pid: int) -> str:
        """Stable per-sweep worker label (w0, w1, ...) for a pid."""
        label = self._worker_labels.get(pid)
        if label is None:
            label = f"w{len(self._worker_labels)}"
            self._worker_labels[pid] = label
        return label

    @property
    def done(self) -> int:
        """Cells accounted for: executed + cache hits + journal hits."""
        return self.finished + self.cached + self.journal

    @property
    def cache_hit_fraction(self) -> float:
        """Cache+journal hits as a fraction of completed cells."""
        return (self.cached + self.journal) / self.done if self.done else 0.0

    def rate(self) -> float:
        """Cells/second over the rolling completion window."""
        with self._lock:
            if len(self._rate) < 2:
                return 0.0
            (t0, d0), (t1, d1) = self._rate[0], self._rate[-1]
            if t1 <= t0:
                return 0.0
            return (d1 - d0) / (t1 - t0)

    def eta_seconds(self) -> Optional[float]:
        """Remaining wall-clock estimate from the rolling rate."""
        rate = self.rate()
        if rate <= 0 or self.total <= 0:
            return None
        return max(0, self.total - self.done) / rate

    def churn_tallies(self) -> Tuple[int, float]:
        """(closed convergence windows, entries churned) so far.

        Folded from the merged in-flight registry's
        ``convergence.latency`` / ``tree.churn.entries`` histograms —
        both zero unless the sweep runs with the tree-dynamics
        timeline enabled.
        """
        def fold(registry: MetricsRegistry) -> Tuple[int, float]:
            windows = 0
            churn = 0.0
            for _name, _labels, hist in registry.collect(
                    "convergence.latency"):
                windows += hist.count
            for _name, _labels, hist in registry.collect(
                    "tree.churn.entries"):
                churn += hist.sum
            return windows, churn
        return self.with_registry(fold)

    def with_registry(self, fn: Callable[[MetricsRegistry], T]) -> T:
        """Run ``fn`` against the merged registry under the bus lock.

        The ``--metrics-port`` exporter renders through this so a
        mid-merge scrape never sees a half-folded snapshot.
        """
        with self._lock:
            return fn(self.registry)

    def summary(self) -> Dict[str, object]:
        """A JSON-compatible snapshot of the tallies (tests, debugging)."""
        with self._lock:
            return {
                "total": self.total,
                "done": self.done,
                "started": self.started,
                "finished": self.finished,
                "cached": self.cached,
                "journal": self.journal,
                "retries": self.retries,
                "in_flight": dict(self.in_flight),
                "per_worker": dict(self.per_worker),
            }


class QueueListener:
    """Drain a (multiprocessing) queue of events into a bus.

    The executor hands worker processes the queue; this thread lives in
    the parent and forwards every event to ``bus.publish``.  ``None``
    is the stop sentinel.  Any queue-like object with blocking ``get``
    and ``put`` works (tests use ``queue.Queue``).
    """

    def __init__(self, queue, bus: TelemetryBus) -> None:  # type: ignore[no-untyped-def]
        self.queue = queue
        self.bus = bus
        self._thread = threading.Thread(
            target=self._drain, name="telemetry-bus", daemon=True
        )

    def start(self) -> "QueueListener":
        self._thread.start()
        return self

    def _drain(self) -> None:
        while True:
            try:
                event = self.queue.get()
            except (EOFError, OSError):  # manager torn down under us
                return
            if event is None:
                return
            try:
                self.bus.publish(event)
            except Exception:  # a bad event must not kill the drain
                continue

    def stop(self, timeout: float = 5.0) -> None:
        """Stop draining once everything already queued is delivered."""
        if not self._thread.is_alive():
            return
        try:
            self.queue.put(None)
        except (EOFError, OSError):
            pass
        self._thread.join(timeout=timeout)


class LiveProgressView:
    """Render bus events as a live stderr progress line.

    One line per render: cells done/total with percentage, ETA from the
    bus's rolling rate, cache-hit percentage, retry count and the
    in-flight cell count; when the sweep runs with the tree-dynamics
    timeline, a trailing ``churn <entries>/<windows>w`` segment tracks
    live convergence activity from the merged registry.  Renders are throttled to ``interval``
    seconds (cell events between ticks update the bus but not the
    screen) except for ``sweep_finished``, which always renders so the
    final line shows the complete tallies.  On a TTY the line rewrites
    in place with ``\\r``; on a pipe each render is its own line.
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 interval: float = 0.2,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._clock = clock
        self._last_render = float("-inf")
        self.lines_rendered = 0

    def attach(self, bus: TelemetryBus) -> "LiveProgressView":
        self._bus = bus
        bus.subscribe(self)
        return self

    def __call__(self, event: Event) -> None:
        final = event.get("type") == "sweep_finished"
        now = self._clock()
        if not final and now - self._last_render < self.interval:
            return
        self._last_render = now
        self._render(final)

    def _render(self, final: bool) -> None:
        bus = self._bus
        total = bus.total or max(bus.done, 1)
        percent = 100.0 * bus.done / total
        eta = bus.eta_seconds()
        if final:
            eta_text = "done"
        elif eta is None:
            eta_text = "eta --"
        else:
            eta_text = f"eta {int(eta) // 60}:{int(eta) % 60:02d}"
        line = (
            f"live: {bus.done}/{total} cells ({percent:3.0f}%) | {eta_text}"
            f" | {bus.rate():.1f} cells/s"
            f" | cache {bus.cached + bus.journal}"
            f" ({bus.cache_hit_fraction:.0%} hit)"
            f" | retries {bus.retries}"
            f" | in-flight {len(bus.in_flight)}"
        )
        windows, churn = bus.churn_tallies()
        if windows:
            line += f" | churn {int(churn)}/{windows}w"
        try:
            isatty = getattr(self.stream, "isatty", lambda: False)()
            end = "\n" if (final or not isatty) else "\r"
            self.stream.write(line + end)
            self.stream.flush()
        except ValueError:  # stream closed mid-sweep (tests, pipes)
            return
        self.lines_rendered += 1
