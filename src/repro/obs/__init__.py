"""Unified observability layer: metrics, tracing and profiling.

Every quantitative claim in the paper (tree cost in packet copies,
control overhead, delay ratios — Section 4) flows through this package
so that all protocols are measured by the same instruments:

- :mod:`repro.obs.registry` — a :class:`MetricsRegistry` of counters,
  gauges and histograms (p50/p95/p99), labeled by channel ``<S,G>``,
  protocol and node.  HBH, REUNITE and the PIM baselines emit the
  *same* metric names, so benchmarks compare them through one registry.
- :mod:`repro.obs.tracing` — JSONL export/import/diff for the
  simulation :class:`~repro.netsim.trace.Trace`, so event-driven runs
  can be archived, replayed and compared across code versions.
- :mod:`repro.obs.profiling` — wall-clock ``@profiled`` spans forming
  a hierarchical timer tree, wired into the netsim engine loop, the
  Dijkstra/route-table builds and the experiment harness
  (``python -m repro.experiments report --profile`` renders it).
- :mod:`repro.obs.causal` — causal control-plane tracing: every
  join/tree/fusion walk and data fan-out leg becomes a span with a
  ``trace_id``/``span_id``/``parent_id``, so cascades reconstruct as a
  span DAG with per-span table effects.
- :mod:`repro.obs.flight` — a per-channel flight recorder: bounded
  ring of finished spans interleaved with per-round table snapshots,
  replayable after the fact.
- :mod:`repro.obs.timeline` — the tree-dynamics timeline: table
  mutations become a deterministic per-protocol/per-channel event
  stream (branch/entry add/remove, reroutes, fusion marks) and an
  online :class:`ConvergenceMonitor` pairs each perturbation with the
  sim-time at which the tree re-stabilises.
- :mod:`repro.obs.explain` — the explain engine: walk the span DAG
  backwards from a table entry or oracle violation and render the
  human-readable causal chain.
- :mod:`repro.obs.bus` — the live sweep telemetry bus: workers stream
  per-cell progress events (started/finished/cached/retried, registry
  snapshots) to the parent, which renders live progress and keeps an
  in-flight merged registry.
- :mod:`repro.obs.export` — OpenMetrics text exposition for any
  registry, plus the stdlib ``/metrics`` scrape endpoint behind the
  CLI's ``--metrics-port``.
- :mod:`repro.obs.bench` — the timed benchmark suite and persisted
  ``BENCH_<rev>.json`` baselines with the regression gate behind
  ``python -m repro.experiments bench --check``.

The package sits below every other layer (it imports nothing from the
rest of :mod:`repro` at module load), so any module can instrument
itself without creating import cycles.
"""

from repro.obs.bus import LiveProgressView, QueueListener, TelemetryBus
from repro.obs.causal import (
    CausalTracer,
    Effect,
    Span,
    SpanDag,
    read_spans,
    span_from_dict,
)
from repro.obs.explain import Explainer, Explanation
from repro.obs.export import (
    OPENMETRICS_CONTENT_TYPE,
    render_openmetrics,
    start_metrics_server,
)
from repro.obs.flight import FlightEntry, FlightRecorder
from repro.obs.profiling import PROFILER, Profiler, SpanStats, profiled
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    channel_label,
)
from repro.obs.timeline import (
    ConvergenceMonitor,
    TimelineEvent,
    TreeTimeline,
    event_from_dict,
    read_events,
    write_events_jsonl,
)
from repro.obs.tracing import (
    diff_records,
    read_jsonl,
    record_to_dict,
    write_jsonl,
)

__all__ = [
    "LiveProgressView",
    "QueueListener",
    "TelemetryBus",
    "OPENMETRICS_CONTENT_TYPE",
    "render_openmetrics",
    "start_metrics_server",
    "CausalTracer",
    "Effect",
    "Explainer",
    "Explanation",
    "FlightEntry",
    "FlightRecorder",
    "Span",
    "SpanDag",
    "read_spans",
    "span_from_dict",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "channel_label",
    "PROFILER",
    "Profiler",
    "SpanStats",
    "profiled",
    "ConvergenceMonitor",
    "TimelineEvent",
    "TreeTimeline",
    "event_from_dict",
    "read_events",
    "write_events_jsonl",
    "diff_records",
    "read_jsonl",
    "record_to_dict",
    "write_jsonl",
]
