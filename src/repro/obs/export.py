"""OpenMetrics export: text exposition + a scrape endpoint.

:func:`render_openmetrics` turns any
:class:`~repro.obs.registry.MetricsRegistry` into the Prometheus /
OpenMetrics text exposition format, so the same registry that feeds
the CLI tables can be scraped by a real Prometheus:

- **counters** become ``<name>_total`` samples with a ``# TYPE ...
  counter`` family line;
- **gauges** become plain samples with ``# TYPE ... gauge``;
- **histograms** are exposed as OpenMetrics *summaries* — the
  registry keeps exact observations and serves nearest-rank
  percentiles, so ``{quantile="0.5|0.9|0.95|0.99"}`` samples plus
  ``_count``/``_sum`` lose nothing (a fixed bucket layout would);
- metric names are sanitized (``tree.cost.copies`` ->
  ``tree_cost_copies``), label values escaped per the spec, families
  sorted by name and series by label set, and the output terminated
  with ``# EOF``.

:func:`start_metrics_server` serves a render callable at ``/metrics``
on a stdlib :class:`http.server.ThreadingHTTPServer` daemon thread —
the CLI's ``--metrics-port`` wires it to the telemetry bus's merged
in-flight registry so a sweep can be scraped *while it runs*.
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

#: Content type an OpenMetrics-capable scraper negotiates.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

#: Quantiles exposed per histogram: the bench report's p50/p90/p99
#: plus the p95 dashboards conventionally alert on.
SUMMARY_QUANTILES = (0.5, 0.9, 0.95, 0.99)

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def sanitize_metric_name(name: str) -> str:
    """Map a registry metric name onto the exposition charset.

    Dots (the registry convention: ``tree.cost.copies``) and any other
    illegal character become underscores; a leading digit is prefixed.
    """
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format spec."""
    return (value.replace("\\", r"\\")
                 .replace("\"", r"\"")
                 .replace("\n", r"\n"))


def format_value(value: float) -> str:
    """Render a sample value: integers exactly, floats via repr."""
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _labels_text(labels: Dict[str, str],
                 extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = sorted(labels.items())
    if extra is not None:
        pairs = pairs + [extra]
    if not pairs:
        return ""
    body = ",".join(
        f'{sanitize_metric_name(k)}="{escape_label_value(str(v))}"'
        for k, v in pairs
    )
    return "{" + body + "}"


def render_openmetrics(registry: MetricsRegistry, prefix: str = "") -> str:
    """The registry as OpenMetrics text exposition (``# EOF``-terminated).

    ``prefix`` filters metric names exactly like
    :meth:`MetricsRegistry.collect`.
    """
    families: Dict[str, List[str]] = {}
    kinds: Dict[str, str] = {}
    for name, labels, instrument in registry.collect(prefix):
        exposition = sanitize_metric_name(name)
        lines = families.setdefault(exposition, [])
        if isinstance(instrument, Counter):
            kinds[exposition] = "counter"
            lines.append(f"{exposition}_total{_labels_text(labels)} "
                         f"{format_value(instrument.value)}")
        elif isinstance(instrument, Gauge):
            kinds[exposition] = "gauge"
            lines.append(f"{exposition}{_labels_text(labels)} "
                         f"{format_value(instrument.value)}")
        elif isinstance(instrument, Histogram):
            kinds[exposition] = "summary"
            for quantile in SUMMARY_QUANTILES:
                value = instrument.percentile(quantile * 100)
                lines.append(
                    f"{exposition}"
                    f"{_labels_text(labels, ('quantile', repr(quantile)))} "
                    f"{format_value(value)}"
                )
            lines.append(f"{exposition}_count{_labels_text(labels)} "
                         f"{instrument.count}")
            lines.append(f"{exposition}_sum{_labels_text(labels)} "
                         f"{format_value(instrument.sum)}")
    out: List[str] = []
    for family in sorted(families):
        out.append(f"# TYPE {family} {kinds[family]}")
        out.extend(families[family])
    out.append("# EOF")
    return "\n".join(out) + "\n"


class _MetricsHandler(BaseHTTPRequestHandler):
    """GET /metrics -> the server's render callable; anything else 404."""

    server: "MetricsServer"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path.split("?", 1)[0] not in ("/metrics", "/metrics/"):
            self.send_error(404, "only /metrics is served")
            return
        try:
            body = self.server.render().encode("utf-8")
        except Exception as exc:  # surface render bugs to the scraper
            self.send_error(500, f"render failed: {type(exc).__name__}")
            return
        self.send_response(200)
        self.send_header("Content-Type", OPENMETRICS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        """Scrapes must not spam the sweep's stderr."""


class MetricsServer(ThreadingHTTPServer):
    """A daemon-threaded ``/metrics`` endpoint around a render callable."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 render: Callable[[], str]) -> None:
        super().__init__(address, _MetricsHandler)
        self.render = render
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` ephemeral binds)."""
        return int(self.server_address[1])

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(
            target=self.serve_forever, name="metrics-export", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)


def start_metrics_server(render: Callable[[], str], port: int = 0,
                         host: str = "127.0.0.1") -> MetricsServer:
    """Serve ``render()`` at ``http://host:port/metrics`` in a daemon
    thread.  ``port=0`` binds an ephemeral port (read it back from
    ``server.port``).  The caller owns shutdown via ``server.close()``.
    """
    return MetricsServer((host, port), render).start()
