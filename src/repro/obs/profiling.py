"""Hierarchical wall-clock profiling spans.

A :class:`Profiler` maintains a tree of named spans: entering a span
while another is open nests it, so instrumented call paths render as a
timer tree — e.g. a figure sweep shows ``harness.run_single`` with the
per-protocol converge/measure phases and the Dijkstra builds they
trigger nested beneath.

Disabled (the default) the overhead is a single attribute check per
instrumented call, so hot paths (the engine loop, Dijkstra) stay at
full speed in Monte-Carlo runs; ``python -m repro.experiments report
--profile`` enables the module-level :data:`PROFILER` and prints the
tree.

Spans measure *wall clock* (``time.perf_counter``), not virtual
simulation time — this is the instrument perf PRs justify themselves
with.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple, TypeVar

ReturnT = TypeVar("ReturnT")


class SpanStats:
    """Aggregated timings of one span name at one position in the tree."""

    __slots__ = ("name", "calls", "total", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.total = 0.0  # seconds, inclusive of children
        self.children: Dict[str, "SpanStats"] = {}

    def child(self, name: str) -> "SpanStats":
        node = self.children.get(name)
        if node is None:
            node = SpanStats(name)
            self.children[name] = node
        return node

    @property
    def self_time(self) -> float:
        """Time spent in this span excluding instrumented children."""
        return self.total - sum(c.total for c in self.children.values())

    def walk(self, depth: int = 0) -> Iterator[Tuple[int, "SpanStats"]]:
        """Depth-first (depth, node) traversal, children by total desc."""
        yield depth, self
        ordered = sorted(self.children.values(),
                         key=lambda node: -node.total)
        for child in ordered:
            yield from child.walk(depth + 1)

    def snapshot(self) -> Dict[str, object]:
        """JSON-compatible dump of the subtree."""
        return {
            "name": self.name,
            "calls": self.calls,
            "total_s": self.total,
            "children": [c.snapshot() for c in
                         sorted(self.children.values(),
                                key=lambda node: -node.total)],
        }

    def merge_snapshot(self, data: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` dump into this subtree.

        Calls and totals add; children merge recursively by span name.
        This is how worker processes ship their span trees back to the
        parent profiler in a parallel sweep, so ``report --profile``
        still shows one combined timer tree.
        """
        self.calls += int(data["calls"])  # type: ignore[call-overload]
        self.total += float(data["total_s"])  # type: ignore[arg-type]
        for child_data in data["children"]:  # type: ignore[union-attr]
            self.child(str(child_data["name"])).merge_snapshot(child_data)

    def __repr__(self) -> str:
        return (f"SpanStats({self.name!r}, calls={self.calls}, "
                f"total={self.total:.4f}s)")


class _Span:
    """Context manager recording one timed entry into the profiler."""

    __slots__ = ("_profiler", "_name", "_node", "_start")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Span":
        stack = self._profiler._stack
        self._node = stack[-1].child(self._name)
        stack.append(self._node)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        node = self._node
        node.calls += 1
        node.total += elapsed
        stack = self._profiler._stack
        if stack and stack[-1] is node:
            stack.pop()
        elif node in stack:
            # A child span leaked (manually entered and never exited, or
            # an exception unwound past an abandoned generator): unwind
            # everything above us so later spans don't nest under a dead
            # frame forever.
            while stack.pop() is not node:
                pass
        # else: a reset() was issued inside the span — nothing to pop.


class _NullSpan:
    """Reusable no-op context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Profiler:
    """A span tree accumulator, off by default."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._root = SpanStats("total")
        self._stack: List[SpanStats] = [self._root]

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str):
        """A context manager timing ``name`` under the open span.

        Returns a shared no-op object when profiling is disabled, so
        ``with PROFILER.span(...)`` costs one branch on hot paths.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded spans (enabled state unchanged)."""
        self._root = SpanStats("total")
        self._stack = [self._root]

    def merge_snapshot(self, data: Dict[str, object]) -> None:
        """Fold another profiler's :meth:`SpanStats.snapshot` root dump
        into this tree (worker-process span trees, see
        :meth:`SpanStats.merge_snapshot`).  The snapshot root's own
        calls/total are ignored — only its children carry spans."""
        for child_data in data["children"]:  # type: ignore[union-attr]
            self._root.child(str(child_data["name"])).merge_snapshot(child_data)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def tree(self) -> SpanStats:
        """The root of the recorded span tree."""
        return self._root

    def report(self, min_fraction: float = 0.0) -> str:
        """Render the timer tree, one line per span.

        ``min_fraction`` hides spans below that fraction of the root's
        total (declutters deep Dijkstra fan-out in large sweeps).
        """
        root = self._root
        root.total = sum(c.total for c in root.children.values())
        if not root.children:
            return "profile: no spans recorded (was profiling enabled?)"
        lines = [f"{'span':<48} {'calls':>8} {'total':>10} {'self':>10} {'%':>6}"]
        lines.append("-" * 86)
        budget = root.total or 1.0
        for depth, node in root.walk():
            if node is root:
                continue
            if node.total < min_fraction * budget:
                continue
            indent = "  " * (depth - 1)
            share = 100.0 * node.total / budget
            lines.append(
                f"{indent + node.name:<48} {node.calls:>8d} "
                f"{node.total * 1e3:>8.1f}ms {node.self_time * 1e3:>8.1f}ms "
                f"{share:>5.1f}%"
            )
        lines.append(f"{'(wall clock total)':<48} {'':>8} "
                     f"{root.total * 1e3:>8.1f}ms")
        return "\n".join(lines)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Profiler({state}, spans={len(self._root.children)})"


#: The process-wide profiler that ``@profiled`` and the engine use.
PROFILER = Profiler(enabled=False)


def profiled(name: Optional[str] = None
             ) -> Callable[[Callable[..., ReturnT]], Callable[..., ReturnT]]:
    """Decorator timing a function as a span under :data:`PROFILER`.

    The span name defaults to ``<module-tail>.<function>`` (e.g.
    ``dijkstra.shortest_paths_from``).  When the profiler is disabled
    the wrapper adds one attribute check per call.
    """

    def decorator(fn: Callable[..., ReturnT]) -> Callable[..., ReturnT]:
        label = name or f"{fn.__module__.rsplit('.', 1)[-1]}.{fn.__name__}"

        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object) -> ReturnT:
            if not PROFILER.enabled:
                return fn(*args, **kwargs)
            with PROFILER.span(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorator
