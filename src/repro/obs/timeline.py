"""Tree-dynamics timeline: online per-channel protocol-state streams.

The paper's stability claim (§3.3, Fig. 4) is about *dynamics*: how
much of the tree moves, and for how long, after a membership change or
a fault.  The repo could only answer that post-hoc — diff two
hand-taken snapshots (:mod:`repro.metrics.stability`) or run the
oracle after the fact (:mod:`repro.verify.oracle`).  This module
watches the protocol state *while the simulation runs*:

- a :class:`TreeTimeline` receives table mutations from the same seams
  causal tracing instruments (static drivers at round boundaries, the
  event agents and fault injector in simulated time) and turns them
  into a deterministic per-protocol/per-channel event stream —
  ``branch-add``/``branch-remove``, ``entry-add``/``entry-remove``,
  ``reroute`` (an address moving between nodes in one step),
  ``entry-mark`` (fusion changes) and ``perturb``/``stabilize``
  markers.  Events live in a ring (oldest evicted first, counted in
  :attr:`TreeTimeline.dropped`) and archive to JSONL exactly like
  causal spans.
- a :class:`ConvergenceMonitor` pairs each perturbation (membership
  event, injected fault) with the sim-time at which the channel's tree
  re-stabilises: a perturbation opens a *convergence window*; every
  structural change extends it; once ``quiet`` sim-time passes with no
  change the window closes and yields one ``convergence.latency`` and
  one ``tree.churn.entries`` observation per protocol/channel in a
  :class:`~repro.obs.registry.MetricsRegistry`.  Control-plane message
  counts are bucketed into fixed sim-time windows
  (``control.load.window``), so the histogram's observation order *is*
  the load time series.

The plane is **off by default and off the hot path**: owners hold a
``TreeTimeline(enabled=False)`` (or ``None``) and guard every call
site with the same single ``enabled`` check causal tracing uses, so
benchmarked sweeps pay one boolean test per seam.

This module sits in the obs layer: it imports nothing from the rest of
:mod:`repro` except the registry, so core, netsim and the protocol
drivers can all instrument themselves without import cycles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    IO,
    Any,
    Deque,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)
from collections import deque

from repro.obs.registry import MetricsRegistry

PathOrFile = Union[str, Path, IO[str]]

# ----------------------------------------------------------------------
# Event vocabulary (tests and the timeline CLI rely on these names)
# ----------------------------------------------------------------------
PERTURB = "perturb"  # membership event or injected fault
BRANCH_ADD = "branch-add"  # a node started holding MFT state
BRANCH_REMOVE = "branch-remove"  # a node stopped holding MFT state
ENTRY_ADD = "entry-add"  # a table row appeared
ENTRY_REMOVE = "entry-remove"  # a table row aged out / was dropped
ENTRY_MARK = "entry-mark"  # fusion change: marked bit flipped
REROUTE = "reroute"  # an address moved between nodes in one step
STABILIZE = "stabilize"  # convergence window closed

#: Kinds that mutate tree structure (they feed churn windows); perturb
#: and stabilize are markers *about* the structure, not part of it.
STRUCTURAL_KINDS = frozenset({
    BRANCH_ADD, BRANCH_REMOVE, ENTRY_ADD, ENTRY_REMOVE, ENTRY_MARK, REROUTE,
})

#: Tables whose rows make a node a *branching* node.  "mft" covers the
#: static planes (HBH routers and REUNITE branch state), "src" the
#: static HBH source table, "source-mft" the event-driven source agent.
BRANCH_TABLES = frozenset({"mft", "src", "source-mft"})

#: Channel/protocol value for network-wide perturbations (faults hit
#: links and routers, not one channel).
ALL_CHANNELS = "*"


@dataclass(frozen=True, slots=True)
class TimelineEvent:
    """One timeline entry: what happened to which channel's tree, when.

    ``seq`` is the per-timeline emission index (the deterministic total
    order); ``t`` is simulated time (round number on the static planes,
    virtual seconds on the event plane).
    """

    seq: int
    t: float
    protocol: str
    channel: str
    kind: str
    node: Any = None
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible projection (one JSONL line)."""
        out: Dict[str, Any] = {
            "seq": self.seq,
            "t": self.t,
            "protocol": self.protocol,
            "channel": self.channel,
            "kind": self.kind,
        }
        if self.node is not None:
            out["node"] = _jsonable(self.node)
        if self.detail:
            out["detail"] = self.detail
        return out

    def __str__(self) -> str:
        node = "" if self.node is None else f" @{self.node}"
        detail = f" ({self.detail})" if self.detail else ""
        return (f"t={self.t:g} [{self.protocol} {self.channel}] "
                f"{self.kind}{node}{detail}")


_SCALARS = (str, int, float, bool, type(None))


def _jsonable(value: Any) -> Any:
    return value if isinstance(value, _SCALARS) else repr(value)


def event_from_dict(raw: Dict[str, Any]) -> TimelineEvent:
    """Rebuild an event from its JSONL projection (non-scalar node ids
    come back stringified, exactly like causal spans)."""
    return TimelineEvent(
        seq=raw["seq"],
        t=raw["t"],
        protocol=raw["protocol"],
        channel=raw["channel"],
        kind=raw["kind"],
        node=raw.get("node"),
        detail=raw.get("detail", ""),
    )


#: One table row: ``(node, table, address)``.  Flags (stale, marked)
#: are deliberately *not* part of row identity — a row going stale and
#: fresh again is refresh noise, not a structural change.
TableRow = Tuple[Hashable, str, Hashable]


class TreeTimeline:
    """Records tree-dynamics events while enabled.

    ``maxlen`` bounds memory like a ring buffer: the oldest events are
    evicted first and counted in :attr:`dropped` (and, when a
    ``registry`` is attached, in the ``timeline.dropped`` counter).
    Structural events are forwarded to an attached
    :class:`ConvergenceMonitor`, which is how perturbations get paired
    with re-stabilisation online.
    """

    def __init__(self, enabled: bool = False,
                 maxlen: Optional[int] = 65536,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.enabled = enabled
        self.maxlen = maxlen
        self.registry = registry
        self.monitor: Optional["ConvergenceMonitor"] = None
        self.dropped = 0
        self._events: Deque[TimelineEvent] = deque()
        self._next_seq = 1
        #: Previous table rows per (protocol, channel), diffed by
        #: :meth:`observe_tables`.
        self._rows: Dict[Tuple[str, str], frozenset] = {}
        self._marks: Dict[Tuple[str, str], frozenset] = {}

    def attach_monitor(self, monitor: "ConvergenceMonitor") -> None:
        """Wire a convergence monitor (both directions: the monitor
        records ``stabilize`` events back into this timeline)."""
        self.monitor = monitor
        monitor.timeline = self

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, t: float, protocol: str, channel: str, kind: str,
               node: Any = None, detail: str = "") -> TimelineEvent:
        """Append one event (and notify the monitor for structural
        kinds).  Callers guard with :attr:`enabled` themselves — this
        is the slow path."""
        event = TimelineEvent(seq=self._next_seq, t=t, protocol=protocol,
                              channel=channel, kind=kind, node=node,
                              detail=detail)
        self._next_seq += 1
        self._events.append(event)
        if self.maxlen is not None and len(self._events) > self.maxlen:
            self._events.popleft()
            self.dropped += 1
            if self.registry is not None:
                self.registry.inc("timeline.dropped")
        if kind in STRUCTURAL_KINDS and self.monitor is not None:
            self.monitor.tree_changed(protocol, channel, t, kind)
        return event

    def perturb(self, t: float, protocol: Optional[str] = None,
                channel: Optional[str] = None, node: Any = None,
                detail: str = "") -> None:
        """Record a perturbation (membership event / injected fault).

        ``protocol``/``channel`` of ``None`` means network-wide — every
        channel the monitor watches gets its convergence window opened
        (faults hit links, not channels).
        """
        self.record(t, protocol if protocol is not None else ALL_CHANNELS,
                    channel if channel is not None else ALL_CHANNELS,
                    PERTURB, node=node, detail=detail)
        if self.monitor is not None:
            self.monitor.perturb(protocol, channel, t, detail=detail)

    def observe_tables(self, t: float, protocol: str, channel: str,
                       rows: Iterable[TableRow],
                       marked: Iterable[TableRow] = ()) -> int:
        """Diff the channel's current table rows against the last
        observation and emit the structural events in between.

        ``rows`` are ``(node, table, address)`` triples; ``marked`` the
        subset currently carrying the fusion mark.  Emission order is
        deterministic (reroutes, removes, branch-removes, adds,
        branch-adds, mark flips — each sorted by string form), so the
        archive is byte-identical across runs.  Returns the number of
        events emitted.
        """
        key = (protocol, channel)
        current = frozenset(rows)
        previous = self._rows.get(key, frozenset())
        current_marks = frozenset(marked)
        previous_marks = self._marks.get(key, frozenset())
        self._rows[key] = current
        self._marks[key] = current_marks
        if current == previous and current_marks == previous_marks:
            return 0

        added = current - previous
        removed = previous - current
        emitted = 0

        # Reroutes: the same forwarded address leaving one node's MFT
        # and appearing in another's in a single observation step is the
        # paper's Fig. 2/4 route change — pair them up instead of
        # emitting a disconnected remove+add.
        removed_by_addr: Dict[str, List[TableRow]] = {}
        added_by_addr: Dict[str, List[TableRow]] = {}
        for row in removed:
            if row[1] in BRANCH_TABLES:
                removed_by_addr.setdefault(str(row[2]), []).append(row)
        for row in added:
            if row[1] in BRANCH_TABLES:
                added_by_addr.setdefault(str(row[2]), []).append(row)
        rerouted: set = set()
        for addr_text in sorted(set(removed_by_addr) & set(added_by_addr)):
            old_rows = sorted(removed_by_addr[addr_text], key=_row_key)
            new_rows = sorted(added_by_addr[addr_text], key=_row_key)
            for old_row, new_row in zip(old_rows, new_rows):
                rerouted.add(old_row)
                rerouted.add(new_row)
                self.record(t, protocol, channel, REROUTE, node=new_row[0],
                            detail=f"{addr_text}: {old_row[0]} -> {new_row[0]}")
                emitted += 1

        for row in sorted(removed - rerouted, key=_row_key):
            self.record(t, protocol, channel, ENTRY_REMOVE, node=row[0],
                        detail=f"{row[1]} {row[2]}")
            emitted += 1
        previous_branches = _branch_nodes(previous)
        current_branches = _branch_nodes(current)
        for node in sorted(previous_branches - current_branches, key=str):
            self.record(t, protocol, channel, BRANCH_REMOVE, node=node)
            emitted += 1
        for row in sorted(added - rerouted, key=_row_key):
            self.record(t, protocol, channel, ENTRY_ADD, node=row[0],
                        detail=f"{row[1]} {row[2]}")
            emitted += 1
        for node in sorted(current_branches - previous_branches, key=str):
            self.record(t, protocol, channel, BRANCH_ADD, node=node)
            emitted += 1

        # Fusion changes: mark flips on rows that exist on both sides
        # (rows that appeared/vanished were already reported above).
        for row in sorted((current_marks - previous_marks) & current,
                          key=_row_key):
            self.record(t, protocol, channel, ENTRY_MARK, node=row[0],
                        detail=f"{row[1]} {row[2]} marked")
            emitted += 1
        for row in sorted((previous_marks - current_marks) & current,
                          key=_row_key):
            self.record(t, protocol, channel, ENTRY_MARK, node=row[0],
                        detail=f"{row[1]} {row[2]} unmarked")
            emitted += 1
        return emitted

    def control(self, t: float, protocol: str, channel: str,
                count: int = 1) -> None:
        """Feed ``count`` control messages into the monitor's windowed
        load series (no timeline event — rule processing would flood
        the ring)."""
        if count and self.monitor is not None:
            self.monitor.control(protocol, channel, t, count)

    def poll(self, now: float) -> List[Dict[str, Any]]:
        """Give the monitor a chance to close quiet windows; returns
        the windows closed (see :meth:`ConvergenceMonitor.poll`)."""
        if self.monitor is None:
            return []
        return self.monitor.poll(now)

    def forget(self, protocol: str, channel: str) -> None:
        """Drop the diff baseline for a channel (a crashed-and-wiped
        plane restarts its observation from empty tables)."""
        self._rows.pop((protocol, channel), None)
        self._marks.pop((protocol, channel), None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def events(self) -> List[TimelineEvent]:
        """All retained events, in emission order."""
        return list(self._events)

    def per_channel(self) -> Dict[Tuple[str, str], List[TimelineEvent]]:
        """Retained events grouped by (protocol, channel)."""
        grouped: Dict[Tuple[str, str], List[TimelineEvent]] = {}
        for event in self._events:
            grouped.setdefault((event.protocol, event.channel),
                               []).append(event)
        return grouped

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        """Drop every retained event (seq keeps increasing; ``dropped``
        counts ring evictions, not clears)."""
        self._events.clear()

    # ------------------------------------------------------------------
    # Archival
    # ------------------------------------------------------------------
    def event_dicts(self) -> List[Dict[str, Any]]:
        """JSON-compatible projections of every retained event (how
        worker processes hand timelines back to the sweep executor)."""
        return [event.to_dict() for event in self._events]

    def to_jsonl(self, target: PathOrFile) -> int:
        """Write the retained events as JSON lines; returns the count."""
        return write_events_jsonl(self.event_dicts(), target)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (f"TreeTimeline({state}, events={len(self._events)}, "
                f"dropped={self.dropped})")


def _row_key(row: TableRow) -> Tuple[str, str, str]:
    return (str(row[0]), str(row[1]), str(row[2]))


def _branch_nodes(rows: frozenset) -> set:
    return {row[0] for row in rows if row[1] in BRANCH_TABLES}


def write_events_jsonl(events: Iterable[Dict[str, Any]],
                       target: PathOrFile) -> int:
    """Write event dicts as sorted-key JSON lines; returns the count.

    The sweep executor merges worker timelines in run-index order and
    archives through this single code path, which is what makes the
    file byte-identical across ``--jobs`` and replays.
    """
    lines = [json.dumps(event, sort_keys=True) for event in events]
    text = "\n".join(lines) + ("\n" if lines else "")
    if hasattr(target, "write"):
        target.write(text)  # type: ignore[union-attr]
    else:
        Path(target).write_text(text)  # type: ignore[arg-type]
    return len(lines)


def read_events(source: PathOrFile) -> List[TimelineEvent]:
    """Load events back from a JSONL archive (extra annotation keys
    such as the sweep coordinates are ignored)."""
    if hasattr(source, "read"):
        text = source.read()  # type: ignore[union-attr]
    else:
        text = Path(source).read_text()  # type: ignore[arg-type]
    events = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            events.append(event_from_dict(json.loads(line)))
    return events


# ----------------------------------------------------------------------
# Online convergence monitoring
# ----------------------------------------------------------------------
class _Watch:
    """Per-(protocol, channel) monitor state."""

    __slots__ = ("window_open", "opened_t", "last_perturb_t",
                 "last_change_t", "churn", "perturbs", "closed", "pending",
                 "load_index", "load_count")

    def __init__(self) -> None:
        self.window_open = False
        self.opened_t = 0.0
        self.last_perturb_t = 0.0
        self.last_change_t: Optional[float] = None
        self.churn = 0
        self.perturbs = 0
        self.closed: List[Dict[str, Any]] = []
        self.pending = 0
        self.load_index: Optional[int] = None
        self.load_count = 0


class ConvergenceMonitor:
    """Pairs perturbations with online re-stabilisation times.

    A perturbation opens (or extends) the channel's *convergence
    window*; every structural tree change stamps ``last_change_t`` and
    counts churn.  :meth:`poll` closes windows that have been quiet for
    ``quiet`` sim-time, observing

    - ``convergence.latency`` — last structural change minus last
      perturbation (0 when the perturbation changed nothing), and
    - ``tree.churn.entries`` — structural events inside the window

    per protocol/channel into ``registry``.  Control messages are
    bucketed into fixed ``window``-wide sim-time buckets and flushed
    into the ``control.load.window`` histogram in bucket order, so its
    exact-observation list is the load time series.

    ``quiet`` must exceed the protocol's largest legitimate repair gap
    (soft-state aging means repairs can pause for up to ``t2`` between
    steps) or a window will close early and under-report latency.
    """

    def __init__(self, registry: MetricsRegistry, quiet: float = 5.0,
                 window: Optional[float] = None) -> None:
        if quiet <= 0:
            raise ValueError(f"quiet time must be > 0, got {quiet}")
        self.registry = registry
        self.quiet = quiet
        self.window = window if window is not None else quiet
        self.timeline: Optional[TreeTimeline] = None
        self._watches: Dict[Tuple[str, str], _Watch] = {}

    # ------------------------------------------------------------------
    # Event intake (called by TreeTimeline)
    # ------------------------------------------------------------------
    def watch(self, protocol: str, channel: str) -> None:
        """Start monitoring a channel (idempotent; channels are also
        auto-watched on their first perturbation or change)."""
        self._watch(protocol, channel)

    def _watch(self, protocol: str, channel: str) -> _Watch:
        key = (protocol, channel)
        watch = self._watches.get(key)
        if watch is None:
            watch = self._watches[key] = _Watch()
        return watch

    def perturb(self, protocol: Optional[str], channel: Optional[str],
                t: float, detail: str = "") -> None:
        """A perturbation hit ``channel`` (or every watched channel,
        when ``protocol``/``channel`` is None — network faults)."""
        if protocol is None or channel is None:
            targets = list(self._watches.values())
        else:
            targets = [self._watch(protocol, channel)]
        for watch in targets:
            if not watch.window_open:
                watch.window_open = True
                watch.opened_t = t
                watch.last_change_t = None
                watch.churn = 0
                watch.perturbs = 0
            watch.last_perturb_t = t
            watch.perturbs += 1

    def tree_changed(self, protocol: str, channel: str, t: float,
                     kind: str) -> None:
        """A structural tree event occurred.  Outside a window this is
        steady-state refresh noise and only auto-watches the channel."""
        watch = self._watch(protocol, channel)
        if watch.window_open:
            watch.last_change_t = t
            watch.churn += 1

    def control(self, protocol: str, channel: str, t: float,
                count: int = 1) -> None:
        """Bucket control-message load into fixed sim-time windows."""
        watch = self._watch(protocol, channel)
        index = int(t // self.window)
        if watch.load_index is None:
            watch.load_index = index
        elif index != watch.load_index:
            self._flush_load(protocol, channel, watch)
            watch.load_index = index
        watch.load_count += count

    def _flush_load(self, protocol: str, channel: str,
                    watch: _Watch) -> None:
        if watch.load_index is not None and watch.load_count:
            self.registry.observe("control.load.window", watch.load_count,
                                  protocol=protocol, channel=channel)
        watch.load_count = 0

    # ------------------------------------------------------------------
    # Window closing
    # ------------------------------------------------------------------
    def poll(self, now: float) -> List[Dict[str, Any]]:
        """Close every window that has been quiet for ``quiet`` sim
        time; returns the closed-window summaries."""
        closed = []
        for (protocol, channel), watch in self._watches.items():
            if not watch.window_open:
                continue
            reference = watch.last_perturb_t
            if watch.last_change_t is not None:
                reference = max(reference, watch.last_change_t)
            if now - reference >= self.quiet:
                closed.append(self._close(protocol, channel, watch))
        return closed

    def _close(self, protocol: str, channel: str,
               watch: _Watch) -> Dict[str, Any]:
        if watch.last_change_t is None or \
                watch.last_change_t <= watch.last_perturb_t:
            latency = 0.0
            stabilized_t = watch.last_perturb_t
        else:
            latency = watch.last_change_t - watch.last_perturb_t
            stabilized_t = watch.last_change_t
        summary = {
            "protocol": protocol,
            "channel": channel,
            "opened_t": watch.opened_t,
            "t": stabilized_t,
            "latency": latency,
            "churn": watch.churn,
            "perturbs": watch.perturbs,
        }
        watch.window_open = False
        watch.closed.append(summary)
        self.registry.observe("convergence.latency", latency,
                              protocol=protocol, channel=channel)
        self.registry.observe("tree.churn.entries", watch.churn,
                              protocol=protocol, channel=channel)
        self.registry.inc("convergence.windows", protocol=protocol,
                          channel=channel)
        if self.timeline is not None and self.timeline.enabled:
            self.timeline.record(
                stabilized_t, protocol, channel, STABILIZE,
                detail=f"latency={latency:g} churn={watch.churn}")
        return summary

    @property
    def open_windows(self) -> int:
        """How many watched channels are mid-convergence right now."""
        return sum(1 for watch in self._watches.values()
                   if watch.window_open)

    def finalize(self, now: float) -> Dict[str, Any]:
        """End of run: close quiet windows, flush load buckets, count
        still-open windows as unconverged (``convergence.pending``).
        Returns :meth:`summary`."""
        self.poll(now)
        for (protocol, channel), watch in self._watches.items():
            self._flush_load(protocol, channel, watch)
            if watch.window_open:
                watch.window_open = False
                watch.pending += 1
                self.registry.inc("convergence.pending", protocol=protocol,
                                  channel=channel)
        return self.summary()

    def summary(self) -> Dict[str, Any]:
        """Per-channel digest: closed windows, latencies, pending."""
        out: Dict[str, Any] = {}
        for (protocol, channel) in sorted(self._watches, key=str):
            watch = self._watches[(protocol, channel)]
            out[f"{protocol} {channel}"] = {
                "protocol": protocol,
                "channel": channel,
                "windows": list(watch.closed),
                "latencies": [w["latency"] for w in watch.closed],
                "churn": [w["churn"] for w in watch.closed],
                "pending": watch.pending + (1 if watch.window_open else 0),
            }
        return out

    def __repr__(self) -> str:
        open_windows = sum(1 for w in self._watches.values()
                           if w.window_open)
        return (f"ConvergenceMonitor(watched={len(self._watches)}, "
                f"open={open_windows}, quiet={self.quiet:g})")
