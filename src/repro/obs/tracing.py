"""JSONL export, import and diff for simulation traces.

One trace record becomes one JSON object per line::

    {"t": 12.0, "node": 3, "event": "transmit", "detail": "-> 4: ..."}

The schema is deliberately minimal (``t``, ``node``, ``event``,
``detail``, optional ``subject``) so archived event-driven runs can be
grepped with standard tools, replayed into assertions, and diffed
across code versions — the regression instrument behind "did this
refactor change protocol behaviour?".

Node ids and subjects are JSON-encoded when they are JSON scalars and
stringified otherwise (node ids in this library are ints or strings in
practice).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import (
    IO,
    TYPE_CHECKING,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
)

if TYPE_CHECKING:  # the one place obs and netsim meet; no runtime import
    from repro.netsim.trace import TraceRecord

PathOrFile = Union[str, Path, IO[str]]

_SCALARS = (str, int, float, bool, type(None))


def record_to_dict(record: object) -> dict:
    """Serialize one trace record (anything with the Trace attributes)."""
    out = {
        "t": getattr(record, "time"),
        "node": _jsonable(getattr(record, "node")),
        "event": getattr(record, "event"),
    }
    detail = getattr(record, "detail", "")
    if detail:
        out["detail"] = detail
    subject = getattr(record, "subject", None)
    if subject is not None:
        out["subject"] = _jsonable(subject)
    return out


def _jsonable(value: object) -> object:
    return value if isinstance(value, _SCALARS) else repr(value)


def write_jsonl(records: Iterable[object], target: PathOrFile,
                events: Optional[Iterable[str]] = None) -> int:
    """Write records as JSON lines; returns how many were written.

    ``events`` optionally restricts the export to those event kinds.
    """
    wanted = set(events) if events is not None else None
    lines = []
    for record in records:
        if wanted is not None and getattr(record, "event") not in wanted:
            continue
        lines.append(json.dumps(record_to_dict(record), sort_keys=True))
    text = "\n".join(lines) + ("\n" if lines else "")
    if hasattr(target, "write"):
        target.write(text)  # type: ignore[union-attr]
    else:
        Path(target).write_text(text)  # type: ignore[arg-type]
    return len(lines)


def iter_jsonl(source: PathOrFile) -> Iterator[dict]:
    """Yield the decoded JSON objects of a JSONL trace file."""
    if hasattr(source, "read"):
        text = source.read()  # type: ignore[union-attr]
    else:
        text = Path(source).read_text()  # type: ignore[arg-type]
    for line in text.splitlines():
        line = line.strip()
        if line:
            yield json.loads(line)


def read_jsonl(source: PathOrFile) -> List["TraceRecord"]:
    """Load a JSONL trace back into :class:`TraceRecord` objects."""
    # Imported lazily: obs sits below netsim in the layering, and this
    # is the one place the two meet.
    from repro.netsim.trace import TraceRecord

    return [
        TraceRecord(
            time=raw["t"],
            node=raw["node"],
            event=raw["event"],
            detail=raw.get("detail", ""),
            subject=raw.get("subject"),
        )
        for raw in iter_jsonl(source)
    ]


def diff_records(left: Sequence[object], right: Sequence[object],
                 ignore_time: bool = False) -> List[str]:
    """Human-readable differences between two traces.

    Compares position by position on the JSONL projection; an empty
    list means the traces are equivalent.  ``ignore_time`` drops the
    timestamp from the comparison (useful across timing refactors that
    preserve event order).
    """

    def project(record: object) -> dict:
        data = record_to_dict(record)
        if ignore_time:
            data.pop("t", None)
        return data

    differences = []
    for index, (a, b) in enumerate(zip(left, right)):
        pa, pb = project(a), project(b)
        if pa != pb:
            differences.append(f"record {index}: {pa} != {pb}")
    if len(left) != len(right):
        differences.append(
            f"length mismatch: {len(left)} records vs {len(right)}"
        )
    return differences
