"""Round-based ("static") HBH driver.

The Monte-Carlo sweeps of Section 4 need thousands of converged trees;
running the full packet-level simulator for each would dominate wall
clock without changing the outcome (the paper's scenarios have static
membership).  This driver executes the *same* Appendix-A rules
(:mod:`repro.core.rules`) synchronously, one protocol period per round:

1. every receiver emits its periodic ``join`` (walked hop-by-hop along
   its unicast route toward the source, applying the join rules);
2. the source emits ``tree`` messages for its non-stale MFT entries;
   tree messages walk forward unicast routes, applying the tree rules,
   cascading regenerated trees and ``fusion`` messages to a fixpoint
   within the round;
3. soft state ages: entries missing refreshes go stale (t1) and are
   destroyed (t2), with one round = one refresh period.

``converge()`` repeats rounds until the table state stops changing.
``distribute_data()`` then injects one data packet and records every
link crossing and receiver delay — the measurement the paper's figures
are built from.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, List, Optional, Set, Tuple, Union

from repro.core.messages import FusionMessage, JoinMessage, TreeMessage
from repro.core.rules import (
    Consume,
    Forward,
    OriginateFusion,
    OriginateJoin,
    OriginateTree,
    process_fusion,
    process_fusion_at_source,
    process_join,
    process_join_at_source,
    process_tree,
)
from repro.core.tables import HbhChannelState, Mft, ProtocolTiming, ROUND_TIMING
from repro.errors import ChannelError, ProtocolError, RoutingError
from repro.metrics.distribution import DataDistribution
from repro.obs.profiling import profiled
from repro.routing.tables import UnicastRouting
from repro.topology.model import NodeKind, Topology

NodeId = Hashable

#: Safety valve for in-round message cascades.
_MAX_CASCADE = 100_000


class StaticHbh:
    """One HBH channel driven round-by-round to convergence.

    Node ids double as protocol addresses (the static driver never
    leaves the topology layer).  Only multicast-capable *routers* apply
    the HBH rules; hosts and unicast-only routers simply relay, which
    is exactly the transparent-unicast-cloud property of the protocol.
    """

    def __init__(
        self,
        topology: Topology,
        source: NodeId,
        routing: Optional[UnicastRouting] = None,
        timing: ProtocolTiming = ROUND_TIMING,
    ) -> None:
        topology.kind(source)  # validates node existence
        self.topology = topology
        self.routing = routing or UnicastRouting(topology)
        self.source = source
        self.timing = timing
        self.channel = ("hbh", source)
        self.source_mft = Mft()
        self.states: Dict[NodeId, HbhChannelState] = {}
        self.receivers: Set[NodeId] = set()
        self.round_no = 0
        #: Count of rule-level events, exposed for overhead analysis.
        self.messages_processed = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_receiver(self, receiver: NodeId) -> None:
        """Join ``receiver`` to the channel.

        The receiver's first join is sent immediately and — per
        Section 3.1 — travels uninterceptable to the source.
        """
        self.topology.kind(receiver)
        if receiver == self.source:
            raise ChannelError("the source cannot join its own channel")
        if receiver in self.receivers:
            raise ChannelError(f"receiver {receiver} already joined")
        self.receivers.add(receiver)
        join = JoinMessage(self.channel, receiver, initial=True)
        self._walk_join(receiver, join)

    def remove_receiver(self, receiver: NodeId) -> None:
        """Leave the channel: the receiver just stops sending joins
        (Section 2.1); its state ages out over subsequent rounds."""
        try:
            self.receivers.remove(receiver)
        except KeyError:
            raise ChannelError(f"receiver {receiver} is not joined") from None

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Virtual time: the current round number."""
        return float(self.round_no)

    def run_round(self) -> None:
        """One protocol period: joins, tree/fusion cascade, aging."""
        self.round_no += 1
        for receiver in sorted(self.receivers):
            self._walk_join(receiver, JoinMessage(self.channel, receiver))
        self._tree_phase()
        self._expire()

    @profiled("hbh.converge")
    def converge(self, max_rounds: int = 40, settle_rounds: int = 2) -> int:
        """Run rounds until the tree is stable; returns rounds executed.

        Stability = the structural snapshot unchanged for
        ``settle_rounds`` consecutive rounds.  Raises
        :class:`ProtocolError` if ``max_rounds`` pass without
        convergence (a rule bug, not a tuning matter).
        """
        stable = 0
        previous = self._snapshot()
        for executed in range(1, max_rounds + 1):
            self.run_round()
            current = self._snapshot()
            if current == previous:
                stable += 1
                if stable >= settle_rounds:
                    return executed
            else:
                stable = 0
                previous = current
        raise ProtocolError(
            f"HBH did not converge within {max_rounds} rounds "
            f"({len(self.receivers)} receivers on {self.topology.name!r})"
        )

    def _snapshot(self) -> Tuple:
        """A hashable structural view of all channel state."""
        now, timing = self.now, self.timing
        items: List[Tuple] = []
        for node in sorted(self.states):
            state = self.states[node]
            if state.mct is not None:
                items.append((node, "mct", state.mct.entry.address,
                              state.mct.is_stale(now, timing)))
            if state.mft is not None:
                for entry in state.mft:
                    items.append((node, "mft", entry.address,
                                  entry.is_marked(now, timing),
                                  entry.is_stale(now, timing)))
        for entry in self.source_mft:
            items.append((self.source, "src", entry.address,
                          entry.is_marked(now, timing),
                          entry.is_stale(now, timing)))
        return tuple(items)

    def _expire(self) -> None:
        now, timing = self.now, self.timing
        self.source_mft.expire(now, timing)
        emptied = []
        for node, state in self.states.items():
            state.expire(now, timing)
            if not state.in_tree:
                emptied.append(node)
        for node in emptied:
            del self.states[node]

    # ------------------------------------------------------------------
    # Message walks (hop-by-hop over unicast routes)
    # ------------------------------------------------------------------
    def _state_at(self, node: NodeId) -> HbhChannelState:
        state = self.states.get(node)
        if state is None:
            state = HbhChannelState()
            self.states[node] = state
        return state

    def _applies_rules(self, node: NodeId) -> bool:
        """HBH rules run at multicast-capable transit routers only."""
        return (
            node != self.source
            and self.topology.kind(node) is NodeKind.ROUTER
            and self.topology.is_multicast_capable(node)
        )

    def _on_spt(self, node: NodeId, receiver: NodeId) -> bool:
        """Does ``node`` lie on a unicast shortest path from the source
        to ``receiver``?  The routing fact behind join rule 3's premise
        (a branching node serves receivers on forward shortest paths);
        unreachable endpoints — e.g. mid-fault — count as off-path."""
        try:
            return (
                self.routing.distance(self.source, node)
                + self.routing.distance(node, receiver)
                == self.routing.distance(self.source, receiver)
            )
        except RoutingError:
            return False

    def _walk_join(self, origin: NodeId, message: JoinMessage) -> None:
        """Walk a join from ``origin`` toward the source, applying the
        join rules at every HBH router until interception or arrival."""
        self.messages_processed += 1
        current = origin
        while current != self.source:
            current = self.routing.next_hop(current, self.source)
            if current == self.source:
                process_join_at_source(self.source_mft, message, self.now)
                return
            if not self._applies_rules(current):
                continue
            actions = process_join(
                self._state_at(current), message, current, self.now, self.timing,
                on_spt=self._on_spt(current, message.joiner),
            )
            consumed = False
            for action in actions:
                if isinstance(action, Consume):
                    consumed = True
                elif isinstance(action, OriginateJoin):
                    self._walk_join(
                        current, JoinMessage(self.channel, action.joiner)
                    )
                elif not isinstance(action, Forward):  # pragma: no cover
                    raise ProtocolError(f"unexpected join action {action!r}")
            if consumed:
                return

    def _tree_phase(self) -> None:
        """The source's periodic tree emission plus the full in-round
        cascade of regenerated tree and fusion messages.

        Each distinct message is walked at most once per round: the
        real protocol emits one ``tree(S, G, target)`` per refresh
        period, so replaying duplicates within one synchronous round
        would be an artifact.  This also guarantees the cascade
        terminates when a route flip leaves a transient table cycle
        (two nodes regenerating trees at each other) — the cycle is
        walked once and left to age out over subsequent rounds.
        """
        queue: Deque[Tuple[NodeId, Union[TreeMessage, FusionMessage]]] = deque()
        seen: Set[Tuple] = set()
        for target in self.source_mft.tree_targets(self.now, self.timing):
            queue.append((self.source, TreeMessage(self.channel, target)))
        steps = 0
        while queue:
            steps += 1
            if steps > _MAX_CASCADE:  # pragma: no cover - safety valve
                raise ProtocolError("tree/fusion cascade did not terminate")
            origin, message = queue.popleft()
            if isinstance(message, TreeMessage):
                key = ("tree", origin, message.target)
            else:
                key = ("fusion", origin, tuple(message.receivers))
            if key in seen:
                continue
            seen.add(key)
            if isinstance(message, TreeMessage):
                self._walk_tree(origin, message, queue)
            else:
                self._walk_fusion(origin, message, queue)

    def _walk_tree(
        self,
        origin: NodeId,
        message: TreeMessage,
        queue: Deque,
    ) -> None:
        """Walk ``tree(S, target)`` from ``origin`` toward its target,
        applying the tree rules at every HBH router on the way."""
        self.messages_processed += 1
        target_node = message.target
        current = origin
        while current != target_node:
            previous = current
            current = self.routing.next_hop(current, target_node)
            if current == target_node and not self._applies_rules(current):
                # Arrived at a host/receiver (or the source): consumed.
                return
            if not self._applies_rules(current):
                continue
            actions = process_tree(
                self._state_at(current), message, current, self.now,
                self.timing, arrived_from=previous,
            )
            consumed = False
            for action in actions:
                if isinstance(action, Consume):
                    consumed = True
                elif isinstance(action, OriginateTree):
                    if action.target != current:
                        queue.append(
                            (current, TreeMessage(self.channel, action.target))
                        )
                elif isinstance(action, OriginateFusion):
                    queue.append(
                        (
                            current,
                            FusionMessage(
                                self.channel, action.receivers, sender=current
                            ),
                        )
                    )
                elif not isinstance(action, Forward):  # pragma: no cover
                    raise ProtocolError(f"unexpected tree action {action!r}")
            if consumed:
                return

    def _fusion_next_hop(self, node: NodeId,
                         visited: Set[NodeId]) -> NodeId:
        """Where a fusion leaves ``node``: up the *tree* (the upstream
        interface learned from tree-message arrivals) when known — this
        is what makes the fusion find the data-plane parent even when
        the unicast reverse route toward S misses it — otherwise (off
        tree, unicast-only stretch, or a would-be loop) plain unicast
        toward the source."""
        state = self.states.get(node)
        if (
            state is not None
            and state.upstream is not None
            and state.upstream not in visited
            and self._applies_rules(node)
        ):
            return state.upstream
        return self.routing.next_hop(node, self.source)

    def _walk_fusion(
        self,
        origin: NodeId,
        message: FusionMessage,
        queue: Deque,
    ) -> None:
        """Walk a fusion from ``origin`` upstream toward the source
        (tree-path first, unicast fallback), applying the fusion rules
        until interception."""
        self.messages_processed += 1
        current = origin
        visited: Set[NodeId] = {origin}
        while current != self.source:
            previous = current
            current = self._fusion_next_hop(current, visited)
            visited.add(current)
            if current == self.source:
                process_fusion_at_source(self.source_mft, message, self.now)
                return
            if not self._applies_rules(current):
                continue
            actions = process_fusion(
                self._state_at(current), message, self.now,
                arrived_from=previous,
            )
            if any(isinstance(action, Consume) for action in actions):
                return

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    @profiled("hbh.distribute_data")
    def distribute_data(self) -> DataDistribution:
        """Inject one data packet at the source and record its journey.

        The source addresses one copy to every data-eligible MFT entry
        (stale entries included, marked ones skipped); each branching
        node consumes copies addressed to itself and re-emits per its
        own MFT — the recursive-unicast data plane of Section 2.2.
        """
        distribution = DataDistribution(expected=set(self.receivers))
        expanded: Set[NodeId] = set()
        for target in self.source_mft.data_targets(self.now, self.timing):
            self._walk_data(self.source, target, 0.0, distribution, expanded)
        return distribution

    def _walk_data(
        self,
        origin: NodeId,
        target: NodeId,
        elapsed: float,
        distribution: DataDistribution,
        expanded: Set[NodeId],
    ) -> None:
        current = origin
        while current != target:
            nxt = self.routing.next_hop(current, target)
            cost = self.topology.cost(current, nxt)
            distribution.record_hop(current, nxt, cost)
            elapsed += cost
            current = nxt
        if current in self.receivers:
            distribution.record_delivery(current, elapsed)
        if current in expanded:
            # A transient table cycle would re-copy forever; a real
            # packet would loop until its TTL died.  The first-visit
            # expansion already served this subtree.
            return
        expanded.add(current)
        state = self.states.get(current)
        if state is not None and state.mft is not None:
            for address in state.mft.data_targets(self.now, self.timing):
                if address == current:
                    continue  # a self-entry is the local delivery above
                self._walk_data(
                    current, address, elapsed, distribution, expanded
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def branching_nodes(self) -> List[NodeId]:
        """Routers currently holding an MFT (the tree's branch points)."""
        return sorted(
            node for node, state in self.states.items() if state.is_branching
        )

    def tree_nodes(self) -> List[NodeId]:
        """All routers holding any state for the channel."""
        return sorted(node for node, state in self.states.items()
                      if state.in_tree)

    def describe(self) -> str:
        """Human-readable dump of the converged tree (examples/tests)."""
        lines = [f"HBH channel {self.channel}, round {self.round_no}"]
        lines.append(f"  source {self.source}: {self.source_mft!r}")
        for node in sorted(self.states):
            state = self.states[node]
            table = state.mft if state.mft is not None else state.mct
            lines.append(f"  node {node}: {table!r}")
        return "\n".join(lines)
