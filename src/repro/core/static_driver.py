"""Round-based ("static") HBH driver.

The Monte-Carlo sweeps of Section 4 need thousands of converged trees;
running the full packet-level simulator for each would dominate wall
clock without changing the outcome (the paper's scenarios have static
membership).  This driver executes the *same* Appendix-A rules
(:mod:`repro.core.rules`) synchronously, one protocol period per round:

1. every receiver emits its periodic ``join`` (walked hop-by-hop along
   its unicast route toward the source, applying the join rules);
2. the source emits ``tree`` messages for its non-stale MFT entries;
   tree messages walk forward unicast routes, applying the tree rules,
   cascading regenerated trees and ``fusion`` messages to a fixpoint
   within the round;
3. soft state ages: entries missing refreshes go stale (t1) and are
   destroyed (t2), with one round = one refresh period.

``converge()`` repeats rounds until the table state stops changing.
``distribute_data()`` then injects one data packet and records every
link crossing and receiver delay — the measurement the paper's figures
are built from.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Deque, Dict, Hashable, List, Optional, Set, Tuple, Union

from repro.core.messages import FusionMessage, JoinMessage, TreeMessage
from repro.core.rules import (
    Consume,
    Forward,
    OriginateFusion,
    OriginateJoin,
    OriginateTree,
    process_fusion,
    process_fusion_at_source,
    process_join,
    process_join_at_source,
    process_tree,
)
from repro.core.tables import HbhChannelState, Mft, ProtocolTiming, ROUND_TIMING
from repro.errors import ChannelError, ProtocolError, RoutingError
from repro.metrics.distribution import DataDistribution
from repro.obs.causal import (
    DATA,
    FUSION,
    INITIAL_JOIN,
    JOIN,
    TREE,
    CausalTracer,
    Span,
)
from repro.obs.flight import FlightRecorder
from repro.obs.profiling import profiled
from repro.obs.registry import channel_label
from repro.routing.tables import UnicastRouting, shared_routing
from repro.topology.model import NodeKind, Topology

NodeId = Hashable

#: Safety valve for in-round message cascades.
_MAX_CASCADE = 100_000


class StaticHbh:
    """One HBH channel driven round-by-round to convergence.

    Node ids double as protocol addresses (the static driver never
    leaves the topology layer).  Only multicast-capable *routers* apply
    the HBH rules; hosts and unicast-only routers simply relay, which
    is exactly the transparent-unicast-cloud property of the protocol.
    """

    def __init__(
        self,
        topology: Topology,
        source: NodeId,
        routing: Optional[UnicastRouting] = None,
        timing: ProtocolTiming = ROUND_TIMING,
    ) -> None:
        topology.kind(source)  # validates node existence
        self.topology = topology
        self.routing = routing or shared_routing(topology)
        self.source = source
        self.timing = timing
        self.channel = ("hbh", source)
        self.source_mft = Mft()
        self.states: Dict[NodeId, HbhChannelState] = {}
        self.receivers: Set[NodeId] = set()
        self.round_no = 0
        #: Count of rule-level events, exposed for overhead analysis.
        self.messages_processed = 0
        #: Rendered ``<S,G>`` label used by metrics and causal spans.
        self.channel_name = channel_label(source)
        #: Optional causal tracer + flight recorder (attach_tracer).
        #: None keeps every walk on the untraced fast path.
        self.causal: Optional[CausalTracer] = None
        self.flight: Optional[FlightRecorder] = None

    # ------------------------------------------------------------------
    # Causal tracing (see repro.obs.causal)
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer: Optional[CausalTracer],
                      flight: Optional[FlightRecorder] = None) -> None:
        """Wire a causal tracer (and optionally a flight recorder) into
        every message walk; ``None`` detaches both."""
        self.causal = tracer
        if tracer is None:
            self.flight = None
            return
        if flight is not None:
            tracer.recorder = flight
        recorder = tracer.recorder
        self.flight = recorder if isinstance(recorder, FlightRecorder) else None

    def _span(self, name: str, node: NodeId, target: NodeId = None,
              parent: Optional[Span] = None,
              trace_id: Optional[str] = None) -> Optional[Span]:
        """Open a span when tracing is on; a single None/flag check —
        and None back — when it is off."""
        causal = self.causal
        if causal is None or not causal.enabled:
            return None
        return causal.begin(name, node, self.now, self.channel_name,
                            trace_id=trace_id, parent=parent, target=target)

    @staticmethod
    def _stamp(message, span: Optional[Span]):
        """Copy the span identity onto a control message (no-op copy
        elided entirely when untraced)."""
        if span is None:
            return message
        return replace(message, trace_id=span.trace_id, span_id=span.span_id)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_receiver(self, receiver: NodeId) -> None:
        """Join ``receiver`` to the channel.

        The receiver's first join is sent immediately and — per
        Section 3.1 — travels uninterceptable to the source.
        """
        self.topology.kind(receiver)
        if receiver == self.source:
            raise ChannelError("the source cannot join its own channel")
        if receiver in self.receivers:
            raise ChannelError(f"receiver {receiver} already joined")
        self.receivers.add(receiver)
        span = self._span(INITIAL_JOIN, receiver, target=receiver)
        join = self._stamp(
            JoinMessage(self.channel, receiver, initial=True), span
        )
        self._walk_join(receiver, join, span)

    def remove_receiver(self, receiver: NodeId) -> None:
        """Leave the channel: the receiver just stops sending joins
        (Section 2.1); its state ages out over subsequent rounds."""
        try:
            self.receivers.remove(receiver)
        except KeyError:
            raise ChannelError(f"receiver {receiver} is not joined") from None

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Virtual time: the current round number."""
        return float(self.round_no)

    def run_round(self) -> None:
        """One protocol period: joins, tree/fusion cascade, aging."""
        self.round_no += 1
        for receiver in sorted(self.receivers):
            span = self._span(JOIN, receiver, target=receiver)
            self._walk_join(
                receiver,
                self._stamp(JoinMessage(self.channel, receiver), span),
                span,
            )
        self._tree_phase()
        self._expire()
        if self.flight is not None:
            watermark = self.causal.next_id if self.causal is not None else 0
            self.flight.snapshot(
                self.channel_name, self.now, f"round {self.round_no}",
                self._snapshot(), span_watermark=watermark,
            )

    @profiled("hbh.converge")
    def converge(self, max_rounds: int = 40, settle_rounds: int = 2) -> int:
        """Run rounds until the tree is stable; returns rounds executed.

        Stability = the structural snapshot unchanged for
        ``settle_rounds`` consecutive rounds.  Raises
        :class:`ProtocolError` if ``max_rounds`` pass without
        convergence (a rule bug, not a tuning matter).
        """
        stable = 0
        previous = self._snapshot()
        for executed in range(1, max_rounds + 1):
            self.run_round()
            current = self._snapshot()
            if current == previous:
                stable += 1
                if stable >= settle_rounds:
                    return executed
            else:
                stable = 0
                previous = current
        raise ProtocolError(
            f"HBH did not converge within {max_rounds} rounds "
            f"({len(self.receivers)} receivers on {self.topology.name!r})"
        )

    def _snapshot(self) -> Tuple:
        """A hashable structural view of all channel state."""
        now, timing = self.now, self.timing
        items: List[Tuple] = []
        for node in sorted(self.states):
            state = self.states[node]
            if state.mct is not None:
                items.append((node, "mct", state.mct.entry.address,
                              state.mct.is_stale(now, timing)))
            if state.mft is not None:
                for entry in state.mft:
                    items.append((node, "mft", entry.address,
                                  entry.is_marked(now, timing),
                                  entry.is_stale(now, timing)))
        for entry in self.source_mft:
            items.append((self.source, "src", entry.address,
                          entry.is_marked(now, timing),
                          entry.is_stale(now, timing)))
        return tuple(items)

    def _expire(self) -> None:
        now, timing = self.now, self.timing
        self.source_mft.expire(now, timing)
        emptied = []
        for node, state in self.states.items():
            state.expire(now, timing)
            if not state.in_tree:
                emptied.append(node)
        for node in emptied:
            del self.states[node]

    # ------------------------------------------------------------------
    # Message walks (hop-by-hop over unicast routes)
    # ------------------------------------------------------------------
    def _state_at(self, node: NodeId) -> HbhChannelState:
        state = self.states.get(node)
        if state is None:
            state = HbhChannelState()
            self.states[node] = state
        return state

    def _applies_rules(self, node: NodeId) -> bool:
        """HBH rules run at multicast-capable transit routers only."""
        return (
            node != self.source
            and self.topology.kind(node) is NodeKind.ROUTER
            and self.topology.is_multicast_capable(node)
        )

    def _on_spt(self, node: NodeId, receiver: NodeId) -> bool:
        """Does ``node`` lie on a unicast shortest path from the source
        to ``receiver``?  The routing fact behind join rule 3's premise
        (a branching node serves receivers on forward shortest paths);
        unreachable endpoints — e.g. mid-fault — count as off-path."""
        try:
            return (
                self.routing.distance(self.source, node)
                + self.routing.distance(node, receiver)
                == self.routing.distance(self.source, receiver)
            )
        except RoutingError:
            return False

    def _walk_join(self, origin: NodeId, message: JoinMessage,
                   span: Optional[Span] = None) -> None:
        """Walk a join from ``origin`` toward the source, applying the
        join rules at every HBH router until interception or arrival."""
        self.messages_processed += 1
        current = origin
        while current != self.source:
            current = self.routing.next_hop(current, self.source)
            if span is not None:
                span.hops.append(current)
            if current == self.source:
                if span is not None:
                    existed = message.joiner in self.source_mft
                process_join_at_source(self.source_mft, message, self.now)
                if span is not None:
                    verb = "refresh-join" if existed else "add"
                    self.causal.effect(span, self.source, "source-mft",
                                       message.joiner, verb, self.now)
                    self.causal.finish(
                        span,
                        f"reached source (MFT entry {message.joiner} "
                        f"{'refreshed' if existed else 'added'})",
                    )
                return
            if not self._applies_rules(current):
                continue
            actions = process_join(
                self._state_at(current), message, current, self.now, self.timing,
                on_spt=self._on_spt(current, message.joiner),
            )
            consumed = False
            for action in actions:
                if isinstance(action, Consume):
                    consumed = True
                elif isinstance(action, OriginateJoin):
                    child = None
                    if span is not None:
                        # Rule 3: the interceptor refreshed the joiner's
                        # entry and joins the channel itself upstream.
                        self.causal.effect(span, current, "mft",
                                           message.joiner, "refresh-join",
                                           self.now)
                        child = self.causal.begin(
                            JOIN, current, self.now, self.channel_name,
                            parent=span, target=action.joiner,
                        )
                    self._walk_join(
                        current,
                        self._stamp(JoinMessage(self.channel, action.joiner),
                                    child),
                        child,
                    )
                elif not isinstance(action, Forward):  # pragma: no cover
                    raise ProtocolError(f"unexpected join action {action!r}")
            if consumed:
                if span is not None:
                    self.causal.finish(
                        span, f"intercepted by {current} (join rule 3)"
                    )
                return

    def _tree_phase(self) -> None:
        """The source's periodic tree emission plus the full in-round
        cascade of regenerated tree and fusion messages.

        Each distinct message is walked at most once per round: the
        real protocol emits one ``tree(S, G, target)`` per refresh
        period, so replaying duplicates within one synchronous round
        would be an artifact.  This also guarantees the cascade
        terminates when a route flip leaves a transient table cycle
        (two nodes regenerating trees at each other) — the cycle is
        walked once and left to age out over subsequent rounds.
        """
        queue: Deque[
            Tuple[NodeId, Union[TreeMessage, FusionMessage], Optional[Span]]
        ] = deque()
        seen: Set[Tuple] = set()
        for target in self.source_mft.tree_targets(self.now, self.timing):
            queue.append((self.source, TreeMessage(self.channel, target), None))
        causal = self.causal
        tracing = causal is not None and causal.enabled
        #: All of one round's emission shares one trace: the origin
        #: event is "the source's periodic tree refresh of round N".
        round_trace = (
            f"{self.channel_name}/round{self.round_no}.tree" if tracing
            else None
        )
        steps = 0
        while queue:
            steps += 1
            if steps > _MAX_CASCADE:  # pragma: no cover - safety valve
                raise ProtocolError("tree/fusion cascade did not terminate")
            origin, message, parent = queue.popleft()
            if isinstance(message, TreeMessage):
                key = ("tree", origin, message.target)
            else:
                key = ("fusion", origin, tuple(message.receivers))
            if key in seen:
                continue
            seen.add(key)
            span: Optional[Span] = None
            if tracing:
                if isinstance(message, TreeMessage):
                    span = causal.begin(
                        TREE, origin, self.now, self.channel_name,
                        trace_id=round_trace if parent is None else None,
                        parent=parent, target=message.target,
                    )
                else:
                    span = causal.begin(
                        FUSION, origin, self.now, self.channel_name,
                        parent=parent, target=message.receivers,
                    )
                message = self._stamp(message, span)
            if isinstance(message, TreeMessage):
                self._walk_tree(origin, message, queue, span)
            else:
                self._walk_fusion(origin, message, queue, span)

    def _walk_tree(
        self,
        origin: NodeId,
        message: TreeMessage,
        queue: Deque,
        span: Optional[Span] = None,
    ) -> None:
        """Walk ``tree(S, target)`` from ``origin`` toward its target,
        applying the tree rules at every HBH router on the way."""
        self.messages_processed += 1
        target_node = message.target
        current = origin
        while current != target_node:
            previous = current
            current = self.routing.next_hop(current, target_node)
            if span is not None:
                span.hops.append(current)
            if current == target_node and not self._applies_rules(current):
                # Arrived at a host/receiver (or the source): consumed.
                if span is not None:
                    self.causal.finish(span, f"reached {target_node}")
                return
            if not self._applies_rules(current):
                continue
            state = self._state_at(current)
            if span is not None:
                before = self._tree_facts(state, target_node)
            actions = process_tree(
                state, message, current, self.now,
                self.timing, arrived_from=previous,
            )
            if span is not None:
                self._tree_effects(span, current, state, target_node, before)
            consumed = False
            for action in actions:
                if isinstance(action, Consume):
                    consumed = True
                elif isinstance(action, OriginateTree):
                    if action.target != current:
                        queue.append(
                            (current,
                             TreeMessage(self.channel, action.target),
                             span)
                        )
                elif isinstance(action, OriginateFusion):
                    queue.append(
                        (
                            current,
                            FusionMessage(
                                self.channel, action.receivers, sender=current
                            ),
                            span,
                        )
                    )
                elif not isinstance(action, Forward):  # pragma: no cover
                    raise ProtocolError(f"unexpected tree action {action!r}")
            if consumed:
                if span is not None:
                    if before[0]:  # the target held an MFT: rule 1
                        regenerated = sum(
                            1 for a in actions if isinstance(a, OriginateTree)
                        )
                        self.causal.finish(
                            span,
                            f"delivered to branching node {current} "
                            f"(tree rule 1: {regenerated} trees regenerated)",
                        )
                    else:
                        self.causal.finish(span, f"reached {target_node}")
                return
        if span is not None and not span.finished:
            self.causal.finish(span, f"reached {target_node}")

    def _tree_facts(self, state: HbhChannelState,
                    target: NodeId) -> Tuple[bool, bool, Optional[NodeId]]:
        """Cheap before-facts from which :meth:`_tree_effects` infers
        which Appendix-A tree rule fired (the rules stay pure)."""
        mct = state.mct
        return (
            state.mft is not None,
            state.mft is not None and target in state.mft,
            None if mct is None else mct.entry.address,
        )

    def _tree_effects(self, span: Span, node: NodeId,
                      state: HbhChannelState, target: NodeId,
                      before: Tuple[bool, bool, Optional[NodeId]]) -> None:
        """Record the table mutations one tree-rule application made."""
        had_mft, had_entry, mct_addr = before
        causal = self.causal
        now = self.now
        if target == node:
            return  # rule 1 (or plain consume): regeneration only
        if had_mft:
            # rule 3 refreshes an existing entry, rule 2 adds a new one.
            causal.effect(span, node, "mft", target,
                          "refresh-tree" if had_entry else "add", now)
            return
        if state.mft is not None:
            # rule 8: the MCT promoted into an MFT (new branching node).
            causal.effect(span, node, "mct", mct_addr, "promote", now)
            for entry in state.mft:
                causal.effect(span, node, "mft", entry.address, "add", now)
            return
        if state.mct is None:
            return  # no mutation (shouldn't happen on this path)
        if mct_addr is None:  # rule 4
            causal.effect(span, node, "mct", target, "add", now)
        elif mct_addr == target:  # rules 5, 6
            causal.effect(span, node, "mct", target, "refresh-tree", now)
        elif state.mct.entry.address == target:  # rule 7
            causal.effect(span, node, "mct", target, "replace", now)

    def _fusion_next_hop(self, node: NodeId,
                         visited: Set[NodeId]) -> NodeId:
        """Where a fusion leaves ``node``: up the *tree* (the upstream
        interface learned from tree-message arrivals) when known — this
        is what makes the fusion find the data-plane parent even when
        the unicast reverse route toward S misses it — otherwise (off
        tree, unicast-only stretch, or a would-be loop) plain unicast
        toward the source."""
        state = self.states.get(node)
        if (
            state is not None
            and state.upstream is not None
            and state.upstream not in visited
            and self._applies_rules(node)
        ):
            return state.upstream
        return self.routing.next_hop(node, self.source)

    def _walk_fusion(
        self,
        origin: NodeId,
        message: FusionMessage,
        queue: Deque,
        span: Optional[Span] = None,
    ) -> None:
        """Walk a fusion from ``origin`` upstream toward the source
        (tree-path first, unicast fallback), applying the fusion rules
        until interception."""
        self.messages_processed += 1
        current = origin
        visited: Set[NodeId] = {origin}
        while current != self.source:
            previous = current
            current = self._fusion_next_hop(current, visited)
            visited.add(current)
            if span is not None:
                span.hops.append(current)
            if current == self.source:
                if span is not None:
                    marked = [r for r in message.receivers
                              if r in self.source_mft]
                    adopted = message.sender not in self.source_mft
                process_fusion_at_source(self.source_mft, message, self.now)
                if span is not None:
                    self._fusion_effects(span, self.source, "source-mft",
                                         message.sender, marked, adopted)
                return
            if not self._applies_rules(current):
                continue
            state = self._state_at(current)
            if span is not None:
                mft = state.mft
                marked = [] if mft is None else \
                    [r for r in message.receivers if r in mft]
                adopted = mft is not None and message.sender not in mft
            actions = process_fusion(
                state, message, self.now,
                arrived_from=previous,
            )
            if any(isinstance(action, Consume) for action in actions):
                if span is not None:
                    self._fusion_effects(span, current, "mft",
                                         message.sender, marked, adopted)
                return

    def _fusion_effects(self, span: Span, node: NodeId, table: str,
                        sender: NodeId, marked: List[NodeId],
                        adopted: bool) -> None:
        """Record a fusion interception: marks plus sender adoption."""
        causal = self.causal
        now = self.now
        for receiver in marked:
            causal.effect(span, node, table, receiver, "mark", now)
        causal.effect(span, node, table, sender,
                      "adopt" if adopted else "keep-alive", now)
        where = ("reached source" if node == self.source
                 else f"intercepted by {node}")
        causal.finish(
            span,
            f"{where} (fusion: marked {marked}, "
            f"{'adopted' if adopted else 'kept'} {sender})",
        )

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    @profiled("hbh.distribute_data")
    def distribute_data(self) -> DataDistribution:
        """Inject one data packet at the source and record its journey.

        The source addresses one copy to every data-eligible MFT entry
        (stale entries included, marked ones skipped); each branching
        node consumes copies addressed to itself and re-emits per its
        own MFT — the recursive-unicast data plane of Section 2.2.
        """
        distribution = DataDistribution(expected=set(self.receivers))
        expanded: Set[NodeId] = set()
        root = self._span(DATA, self.source)
        for target in self.source_mft.data_targets(self.now, self.timing):
            child = None
            if root is not None:
                child = self.causal.begin(
                    DATA, self.source, self.now, self.channel_name,
                    parent=root, target=target,
                )
            self._walk_data(self.source, target, 0.0, distribution,
                            expanded, child)
        if root is not None:
            self.causal.finish(
                root, f"data fan-out from {self.source}"
            )
        return distribution

    def _walk_data(
        self,
        origin: NodeId,
        target: NodeId,
        elapsed: float,
        distribution: DataDistribution,
        expanded: Set[NodeId],
        span: Optional[Span] = None,
    ) -> None:
        current = origin
        while current != target:
            nxt = self.routing.next_hop(current, target)
            cost = self.topology.cost(current, nxt)
            distribution.record_hop(current, nxt, cost)
            elapsed += cost
            current = nxt
            if span is not None:
                span.hops.append(current)
        delivered = current in self.receivers
        if delivered:
            distribution.record_delivery(current, elapsed)
        if current in expanded:
            # A transient table cycle would re-copy forever; a real
            # packet would loop until its TTL died.  The first-visit
            # expansion already served this subtree.
            if span is not None:
                self.causal.finish(
                    span, f"suppressed at {current} (already expanded)"
                )
            return
        expanded.add(current)
        copies = 0
        state = self.states.get(current)
        if state is not None and state.mft is not None:
            for address in state.mft.data_targets(self.now, self.timing):
                if address == current:
                    continue  # a self-entry is the local delivery above
                child = None
                if span is not None:
                    child = self.causal.begin(
                        DATA, current, self.now, self.channel_name,
                        parent=span, target=address,
                    )
                copies += 1
                self._walk_data(
                    current, address, elapsed, distribution, expanded, child
                )
        if span is not None:
            parts = []
            if delivered:
                parts.append(f"delivered to {current} (delay {elapsed:g})")
            if copies:
                parts.append(f"branched into {copies} copies at {current}")
            self.causal.finish(
                span, "; ".join(parts) or f"terminated at {current}"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def branching_nodes(self) -> List[NodeId]:
        """Routers currently holding an MFT (the tree's branch points)."""
        return sorted(
            node for node, state in self.states.items() if state.is_branching
        )

    def tree_nodes(self) -> List[NodeId]:
        """All routers holding any state for the channel."""
        return sorted(node for node, state in self.states.items()
                      if state.in_tree)

    def describe(self) -> str:
        """Human-readable dump of the converged tree (examples/tests)."""
        lines = [f"HBH channel {self.channel}, round {self.round_no}"]
        lines.append(f"  source {self.source}: {self.source_mft!r}")
        for node in sorted(self.states):
            state = self.states[node]
            table = state.mft if state.mft is not None else state.mct
            lines.append(f"  node {node}: {table!r}")
        return "\n".join(lines)
