"""Round-based ("static") HBH driver.

The Monte-Carlo sweeps of Section 4 need thousands of converged trees;
running the full packet-level simulator for each would dominate wall
clock without changing the outcome (the paper's scenarios have static
membership).  This driver executes the *same* Appendix-A rules
(:mod:`repro.core.rules`) synchronously, one protocol period per round:

1. every receiver emits its periodic ``join`` (walked hop-by-hop along
   its unicast route toward the source, applying the join rules);
2. the source emits ``tree`` messages for its non-stale MFT entries;
   tree messages walk forward unicast routes, applying the tree rules,
   cascading regenerated trees and ``fusion`` messages to a fixpoint
   within the round;
3. soft state ages: entries missing refreshes go stale (t1) and are
   destroyed (t2), with one round = one refresh period.

``converge()`` repeats rounds until the table state stops changing.
``distribute_data()`` then injects one data packet and records every
link crossing and receiver delay — the measurement the paper's figures
are built from.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Deque, Dict, Hashable, List, Optional, Set, Tuple, Union

from repro.core.messages import FusionMessage, JoinMessage, TreeMessage
from repro.core.rules import (
    FORWARD_ONLY,
    Consume,
    Forward,
    OriginateFusion,
    OriginateJoin,
    OriginateTree,
    process_fusion,
    process_fusion_at_source,
    process_join,
    process_join_at_source,
    process_tree,
)
from repro.core.tables import HbhChannelState, Mft, ProtocolTiming, ROUND_TIMING
from repro.errors import ChannelError, ProtocolError, RoutingError
from repro.metrics.distribution import DataDistribution
from repro.obs.causal import (
    DATA,
    FUSION,
    INITIAL_JOIN,
    JOIN,
    TREE,
    CausalTracer,
    Span,
)
from repro.obs.flight import FlightRecorder
from repro.obs.profiling import profiled
from repro.obs.registry import channel_label
from repro.obs.timeline import ConvergenceMonitor, TreeTimeline
from repro.routing.tables import UnicastRouting, shared_routing
from repro.topology.model import NodeKind, Topology

NodeId = Hashable

#: Safety valve for in-round message cascades.
_MAX_CASCADE = 100_000

#: Sentinel for "origin generation not queried yet" during cache
#: revalidation (``None`` is a legitimate answer: origin not cached).
_UNKNOWN = object()


class StaticHbh:
    """One HBH channel driven round-by-round to convergence.

    Node ids double as protocol addresses (the static driver never
    leaves the topology layer).  Only multicast-capable *routers* apply
    the HBH rules; hosts and unicast-only routers simply relay, which
    is exactly the transparent-unicast-cloud property of the protocol.
    """

    def __init__(
        self,
        topology: Topology,
        source: NodeId,
        routing: Optional[UnicastRouting] = None,
        timing: ProtocolTiming = ROUND_TIMING,
        group: str = "G",
    ) -> None:
        topology.kind(source)  # validates node existence
        self.topology = topology
        self.routing = routing or shared_routing(topology)
        self.source = source
        self.timing = timing
        self.group = group
        self.channel = ("hbh", source)
        self.source_mft = Mft()
        self.states: Dict[NodeId, HbhChannelState] = {}
        self.receivers: Set[NodeId] = set()
        #: Sorted membership, rebuilt on add/remove (run_round iterates
        #: it every round; sorting per round is pure waste).
        self._receivers_sorted: Optional[List[NodeId]] = None
        self.round_no = 0
        #: Count of rule-level events, exposed for overhead analysis.
        self.messages_processed = 0
        #: Rendered ``<S,G>`` label used by metrics and causal spans.
        self.channel_name = channel_label(source, group)
        #: Memoized :meth:`_applies_rules` verdicts.  Node kind and
        #: multicast capability are fixed before a driver exists (every
        #: ``set_multicast_capable`` call site in the experiments
        #: configures the topology first), so the verdict is static for
        #: the driver's lifetime.
        self._rules_cache: Dict[NodeId, bool] = {}
        #: Memoized :meth:`_on_spt` verdicts, valid for one routing
        #: generation; None generation (duck-typed learned-routing
        #: views don't count generations) disables this cache.
        self._spt_cache: Dict[Tuple[NodeId, NodeId], bool] = {}
        self._spt_generation: Optional[int] = None
        #: Precomputed walk plans for the untraced fast paths: the
        #: rule-applying hops of a route (with their full-path
        #: predecessors for ``arrived_from``, or the on-SPT verdicts a
        #: join walk feeds rule 3), so steady-state walks skip the
        #: transparent unicast hops entirely.  Valid for one routing
        #: generation, like :attr:`_spt_cache`.
        self._join_plans: Dict[NodeId, Tuple[Tuple[NodeId, bool], ...]] = {}
        self._tree_plans: Dict[
            Tuple[NodeId, NodeId], Tuple[Tuple[NodeId, NodeId], ...]
        ] = {}
        self._plan_generation: Optional[int] = None
        #: Per-entry origin dependencies of the three route-fact caches
        #: above, as ``(origin, origin_generation)`` pairs captured at
        #: build time.  When the routing substrate supports per-origin
        #: generations (incremental :class:`UnicastRouting`), a global
        #: generation bump revalidates each entry against its own
        #: origins and keeps everything a fault did not touch; without
        #: that support the caches still clear wholesale.
        self._join_plan_deps: Dict[
            NodeId, Tuple[Tuple[NodeId, Optional[int]], ...]
        ] = {}
        self._tree_plan_deps: Dict[
            Tuple[NodeId, NodeId], Tuple[Tuple[NodeId, Optional[int]], ...]
        ] = {}
        self._spt_deps: Dict[
            Tuple[NodeId, NodeId], Tuple[Tuple[NodeId, Optional[int]], ...]
        ] = {}
        #: Control messages are frozen dataclasses and the untraced
        #: walks re-emit identical ones every round — cache per target
        #: (no generation dependency; messages carry no routing facts).
        self._join_msg_cache: Dict[NodeId, JoinMessage] = {}
        self._tree_msg_cache: Dict[NodeId, TreeMessage] = {}
        #: Memoized-path accessor when the routing substrate offers one
        #: (UnicastRouting does; learned views walk next_hop instead).
        self._route_path = getattr(self.routing, "path_tuple", None)
        #: Optional causal tracer + flight recorder (attach_tracer).
        #: None keeps every walk on the untraced fast path.
        self.causal: Optional[CausalTracer] = None
        self.flight: Optional[FlightRecorder] = None
        #: Optional tree-dynamics timeline (attach_timeline).  None (or
        #: a disabled timeline) costs one check per round — the walks
        #: themselves are never touched; the timeline diffs table state
        #: at round boundaries only.
        self.timeline: Optional[TreeTimeline] = None
        self._timeline_messages = 0

    # ------------------------------------------------------------------
    # Causal tracing (see repro.obs.causal)
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer: Optional[CausalTracer],
                      flight: Optional[FlightRecorder] = None) -> None:
        """Wire a causal tracer (and optionally a flight recorder) into
        every message walk; ``None`` detaches both."""
        self.causal = tracer
        if tracer is None:
            self.flight = None
            return
        if flight is not None:
            tracer.recorder = flight
        recorder = tracer.recorder
        self.flight = recorder if isinstance(recorder, FlightRecorder) else None

    def attach_timeline(self, timeline: Optional[TreeTimeline],
                        monitor: Optional[ConvergenceMonitor] = None
                        ) -> None:
        """Wire a tree-dynamics timeline (and optionally an online
        convergence monitor) into the round loop; ``None`` detaches."""
        self.timeline = timeline
        self._timeline_messages = self.messages_processed
        if timeline is not None and monitor is not None:
            timeline.attach_monitor(monitor)
        if timeline is not None and timeline.monitor is not None:
            timeline.monitor.watch("hbh", self.channel_name)

    def _span(self, name: str, node: NodeId, target: NodeId = None,
              parent: Optional[Span] = None,
              trace_id: Optional[str] = None) -> Optional[Span]:
        """Open a span when tracing is on; a single None/flag check —
        and None back — when it is off."""
        causal = self.causal
        if causal is None or not causal.enabled:
            return None
        return causal.begin(name, node, self.now, self.channel_name,
                            trace_id=trace_id, parent=parent, target=target)

    @staticmethod
    def _stamp(message, span: Optional[Span]):
        """Copy the span identity onto a control message (no-op copy
        elided entirely when untraced)."""
        if span is None:
            return message
        return replace(message, trace_id=span.trace_id, span_id=span.span_id)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_receiver(self, receiver: NodeId) -> None:
        """Join ``receiver`` to the channel.

        The receiver's first join is sent immediately and — per
        Section 3.1 — travels uninterceptable to the source.
        """
        self.topology.kind(receiver)
        if receiver == self.source:
            raise ChannelError("the source cannot join its own channel")
        if receiver in self.receivers:
            raise ChannelError(f"receiver {receiver} already joined")
        self.receivers.add(receiver)
        self._receivers_sorted = None
        timeline = self.timeline
        if timeline is not None and timeline.enabled:
            timeline.perturb(self.now, "hbh", self.channel_name,
                             node=receiver, detail="join")
        span = self._span(INITIAL_JOIN, receiver, target=receiver)
        join = self._stamp(
            JoinMessage(self.channel, receiver, initial=True), span
        )
        self._walk_join(receiver, join, span)

    def remove_receiver(self, receiver: NodeId) -> None:
        """Leave the channel: the receiver just stops sending joins
        (Section 2.1); its state ages out over subsequent rounds."""
        try:
            self.receivers.remove(receiver)
        except KeyError:
            raise ChannelError(f"receiver {receiver} is not joined") from None
        self._receivers_sorted = None
        timeline = self.timeline
        if timeline is not None and timeline.enabled:
            timeline.perturb(self.now, "hbh", self.channel_name,
                             node=receiver, detail="leave")

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Virtual time: the current round number."""
        return float(self.round_no)

    def run_round(self) -> None:
        """One protocol period: joins, tree/fusion cascade, aging."""
        self.round_no += 1
        receivers = self._receivers_sorted
        if receivers is None:
            receivers = self._receivers_sorted = sorted(self.receivers)
        causal = self.causal
        if (causal is None or not causal.enabled) and self._plans_current():
            # Untraced steady state: dispatch straight to the fast
            # walk, one tracing/plan check for the whole round.
            now = float(self.round_no)
            channel = self.channel
            fast = self._walk_join_fast
            msg_cache = self._join_msg_cache
            for receiver in receivers:
                message = msg_cache.get(receiver)
                if message is None:
                    message = JoinMessage(channel, receiver)
                    msg_cache[receiver] = message
                fast(receiver, message, now)
        else:
            for receiver in receivers:
                span = self._span(JOIN, receiver, target=receiver)
                self._walk_join(
                    receiver,
                    self._stamp(JoinMessage(self.channel, receiver), span),
                    span,
                )
        self._tree_phase()
        self._expire()
        timeline = self.timeline
        if timeline is not None and timeline.enabled:
            self._observe_timeline(timeline)
        if self.flight is not None:
            watermark = self.causal.next_id if self.causal is not None else 0
            self.flight.snapshot(
                self.channel_name, self.now, f"round {self.round_no}",
                self._snapshot(), span_watermark=watermark,
            )

    @profiled("hbh.converge")
    def converge(self, max_rounds: int = 40, settle_rounds: int = 2) -> int:
        """Run rounds until the tree is stable; returns rounds executed.

        Stability = the structural snapshot unchanged for
        ``settle_rounds`` consecutive rounds.  Raises
        :class:`ProtocolError` if ``max_rounds`` pass without
        convergence (a rule bug, not a tuning matter).
        """
        stable = 0
        previous = self._snapshot()
        for executed in range(1, max_rounds + 1):
            self.run_round()
            current = self._snapshot()
            if current == previous:
                stable += 1
                if stable >= settle_rounds:
                    return executed
            else:
                stable = 0
                previous = current
        raise ProtocolError(
            f"HBH did not converge within {max_rounds} rounds "
            f"({len(self.receivers)} receivers on {self.topology.name!r})"
        )

    def _snapshot(self) -> Tuple:
        """A hashable structural view of all channel state.

        Runs twice per round (convergence compares consecutive
        snapshots), so the entry flags are computed inline — same
        predicates as :meth:`MftEntry.is_marked` / ``is_stale`` —
        instead of two method calls per entry.
        """
        now, timing = self.now, self.timing
        t1 = timing.t1
        items: List[Tuple] = []
        append = items.append
        states = self.states
        for node in sorted(states):
            state = states[node]
            mct = state.mct
            if mct is not None:
                append((node, "mct", mct.entry.address,
                        mct.is_stale(now, timing)))
            mft = state.mft
            if mft is not None:
                for entry in mft.entries():
                    marked_at = entry.marked_at
                    append((node, "mft", entry.address,
                            marked_at is not None and (now - marked_at) < t1,
                            entry.forced_stale
                            or (now - entry.refreshed_at) >= t1))
        source = self.source
        for entry in self.source_mft.entries():
            marked_at = entry.marked_at
            append((source, "src", entry.address,
                    marked_at is not None and (now - marked_at) < t1,
                    entry.forced_stale or (now - entry.refreshed_at) >= t1))
        return tuple(items)

    def _observe_timeline(self, timeline: TreeTimeline) -> None:
        """Feed the round's table state into the tree-dynamics
        timeline: one structural row diff at the round boundary (the
        walks themselves stay on the untraced fast path) plus this
        round's control-message count into the windowed load series.
        Mark flags use the same freshness predicate as
        :meth:`_snapshot`, so an expired mark is a fusion change."""
        now, timing = self.now, self.timing
        t1 = timing.t1
        rows: List[Tuple] = []
        marks: List[Tuple] = []
        states = self.states
        for node in sorted(states):
            state = states[node]
            mct = state.mct
            if mct is not None:
                rows.append((node, "mct", mct.entry.address))
            mft = state.mft
            if mft is not None:
                for entry in mft.entries():
                    row = (node, "mft", entry.address)
                    rows.append(row)
                    marked_at = entry.marked_at
                    if marked_at is not None and (now - marked_at) < t1:
                        marks.append(row)
        source = self.source
        for entry in self.source_mft.entries():
            row = (source, "src", entry.address)
            rows.append(row)
            marked_at = entry.marked_at
            if marked_at is not None and (now - marked_at) < t1:
                marks.append(row)
        timeline.observe_tables(now, "hbh", self.channel_name, rows, marks)
        timeline.control(now, "hbh", self.channel_name,
                         self.messages_processed - self._timeline_messages)
        self._timeline_messages = self.messages_processed
        timeline.poll(now)

    def _expire(self) -> None:
        now, timing = self.now, self.timing
        self.source_mft.expire(now, timing)
        emptied = []
        for node, state in self.states.items():
            state.expire(now, timing)
            if not state.in_tree:
                emptied.append(node)
        for node in emptied:
            del self.states[node]

    # ------------------------------------------------------------------
    # Message walks (hop-by-hop over unicast routes)
    # ------------------------------------------------------------------
    def _state_at(self, node: NodeId) -> HbhChannelState:
        state = self.states.get(node)
        if state is None:
            state = HbhChannelState()
            self.states[node] = state
        return state

    def _applies_rules(self, node: NodeId) -> bool:
        """HBH rules run at multicast-capable transit routers only.
        Memoized: called once per hop of every walk, against topology
        facts that are fixed before the driver is built."""
        cached = self._rules_cache.get(node)
        if cached is None:
            cached = (
                node != self.source
                and self.topology.kind(node) is NodeKind.ROUTER
                and self.topology.is_multicast_capable(node)
            )
            self._rules_cache[node] = cached
        return cached

    def _hops(self, origin: NodeId, destination: NodeId):
        """The hop sequence ``origin -> destination`` *excluding*
        ``origin`` — what a message walk visits.  Uses the routing
        substrate's memoized path when it has one; otherwise chains
        ``next_hop`` exactly as the walks used to, so learned-routing
        views keep their step-at-a-time semantics."""
        if origin == destination:
            return ()
        route_path = self._route_path
        if route_path is not None:
            return route_path(origin, destination)[1:]
        hops = []
        current = origin
        routing = self.routing
        while current != destination:
            current = routing.next_hop(current, destination)
            hops.append(current)
        return hops

    def _plans_current(self) -> bool:
        """Whether the generation-keyed walk plans are usable (and
        fresh).  False for routing substrates without a ``generation``
        counter — learned views change routes mid-convergence, so their
        walks must re-resolve every hop."""
        generation = getattr(self.routing, "generation", None)
        if generation is None:
            return False
        if generation != self._plan_generation:
            self._revalidate_route_caches()
            self._spt_generation = generation
            self._plan_generation = generation
        return True

    def _revalidate_route_caches(self) -> None:
        """The routing generation moved: drop exactly the cached route
        facts whose origin trees changed.

        Entries are checked against their recorded ``(origin,
        generation)`` dependencies via ``routing.origin_generation``;
        substrates without per-origin generations fall back to the old
        wholesale clear.  Each origin is queried once (the query
        triggers its lazy repair, so a clean origin costs one repaired
        no-op and every plan over it survives the fault).
        """
        origin_gen = getattr(self.routing, "origin_generation", None)
        if origin_gen is None:
            self._join_plans.clear()
            self._tree_plans.clear()
            self._spt_cache.clear()
            self._join_plan_deps.clear()
            self._tree_plan_deps.clear()
            self._spt_deps.clear()
            return
        fresh: Dict[NodeId, Optional[int]] = {}

        def stale(deps) -> bool:
            if deps is None:
                return True
            for node, gen in deps:
                current = fresh.get(node, _UNKNOWN)
                if current is _UNKNOWN:
                    current = origin_gen(node)
                    fresh[node] = current
                if gen is None or current is None or current != gen:
                    return True
            return False

        for cache, deps_map in (
            (self._join_plans, self._join_plan_deps),
            (self._tree_plans, self._tree_plan_deps),
            (self._spt_cache, self._spt_deps),
        ):
            dead = [key for key in cache if stale(deps_map.get(key))]
            for key in dead:
                del cache[key]
                deps_map.pop(key, None)

    def _route_deps(
        self, nodes
    ) -> Tuple[Tuple[NodeId, Optional[int]], ...]:
        """Capture ``(origin, generation)`` pairs for every distinct
        origin whose table a just-built route fact consulted.  Called
        immediately after the fact is computed, so every table is built
        and synced — each query is one integer compare."""
        origin_gen = getattr(self.routing, "origin_generation", None)
        if origin_gen is None:
            return ()
        deps: Dict[NodeId, Optional[int]] = {}
        for node in nodes:
            if node not in deps:
                deps[node] = origin_gen(node)
        return tuple(deps.items())

    def _on_spt(self, node: NodeId, receiver: NodeId) -> bool:
        """Does ``node`` lie on a unicast shortest path from the source
        to ``receiver``?  The routing fact behind join rule 3's premise
        (a branching node serves receivers on forward shortest paths);
        unreachable endpoints — e.g. mid-fault — count as off-path.

        Memoized per routing generation; substrates without a
        ``generation`` counter (learned-routing views) are always
        computed fresh, since their answers change mid-convergence.
        """
        generation = getattr(self.routing, "generation", None)
        if generation is None:
            return self._compute_on_spt(node, receiver)
        if generation != self._spt_generation:
            self._revalidate_route_caches()
            self._spt_generation = generation
            self._plan_generation = generation
        key = (node, receiver)
        cached = self._spt_cache.get(key)
        if cached is None:
            cached = self._compute_on_spt(node, receiver)
            self._spt_cache[key] = cached
            self._spt_deps[key] = self._route_deps((self.source, node))
        return cached

    def _compute_on_spt(self, node: NodeId, receiver: NodeId) -> bool:
        try:
            return (
                self.routing.distance(self.source, node)
                + self.routing.distance(node, receiver)
                == self.routing.distance(self.source, receiver)
            )
        except RoutingError:
            return False

    def _walk_join(self, origin: NodeId, message: JoinMessage,
                   span: Optional[Span] = None) -> None:
        """Walk a join from ``origin`` toward the source, applying the
        join rules at every HBH router until interception or arrival."""
        if span is None and message.joiner == origin \
                and self._plans_current():
            self._walk_join_fast(origin, message, float(self.round_no))
            return
        self.messages_processed += 1
        # Hoist the per-hop lookups (self.* attribute loads, the `now`
        # property, the rules-cache indirection) into locals.
        now = float(self.round_no)
        source = self.source
        timing = self.timing
        states = self.states
        joiner = message.joiner
        rules_cache = self._rules_cache
        for current in self._hops(origin, source):
            if span is not None:
                span.hops.append(current)
            if current == source:
                if span is not None:
                    existed = joiner in self.source_mft
                process_join_at_source(self.source_mft, message, now)
                if span is not None:
                    verb = "refresh-join" if existed else "add"
                    self.causal.effect(span, source, "source-mft",
                                       joiner, verb, now)
                    self.causal.finish(
                        span,
                        f"reached source (MFT entry {joiner} "
                        f"{'refreshed' if existed else 'added'})",
                    )
                return
            applies = rules_cache.get(current)
            if applies is None:
                applies = self._applies_rules(current)
            if not applies:
                continue
            state = states.get(current)
            if state is None:
                state = HbhChannelState()
                states[current] = state
            actions = process_join(
                state, message, current, now, timing,
                on_spt=self._on_spt(current, joiner),
            )
            consumed = False
            for action in actions:
                cls = action.__class__
                if cls is Consume:
                    consumed = True
                elif cls is OriginateJoin:
                    child = None
                    if span is not None:
                        # Rule 3: the interceptor refreshed the joiner's
                        # entry and joins the channel itself upstream.
                        self.causal.effect(span, current, "mft",
                                           joiner, "refresh-join", now)
                        child = self.causal.begin(
                            JOIN, current, now, self.channel_name,
                            parent=span, target=action.joiner,
                        )
                    self._walk_join(
                        current,
                        self._stamp(JoinMessage(self.channel, action.joiner),
                                    child),
                        child,
                    )
                elif cls is not Forward:  # pragma: no cover
                    raise ProtocolError(f"unexpected join action {action!r}")
            if consumed:
                if span is not None:
                    self.causal.finish(
                        span, f"intercepted by {current} (join rule 3)"
                    )
                return

    def _walk_join_fast(self, origin: NodeId, message: JoinMessage,
                        now: float) -> None:
        """Untraced join walk over a precomputed plan.

        The hop sequence and the per-node rules verdicts are both
        static for a routing generation, so the walk reduces to "apply
        the join rules at each rule-applying hop, then deliver at the
        source" — the transparent unicast hops do nothing in an
        untraced walk and are precomputed away.  Rule-3 re-originations
        are walked iteratively (LIFO matches the recursive order: an
        interception stops the outer walk, so at most one nested join
        is ever pending).

        Every fast-walked join has ``joiner == origin`` (periodic joins
        start at the receiver; rule-3 re-originations carry the
        interceptor's own address), so the per-hop on-SPT verdicts are
        a function of the origin alone and live *inside* the plan.
        Callers must have checked :meth:`_plans_current` (and, from the
        generic walk, the joiner invariant) this round.
        """
        source = self.source
        timing = self.timing
        states = self.states
        join_plans = self._join_plans
        channel = self.channel
        source_mft = self.source_mft
        msg_cache = self._join_msg_cache
        walk = [(origin, message)]
        pop = walk.pop
        while walk:
            origin, message = pop()
            self.messages_processed += 1
            plan = join_plans.get(origin)
            if plan is None:
                applies = self._applies_rules
                on_spt = self._compute_on_spt
                hops = self._hops(origin, source)
                plan = tuple((h, on_spt(h, origin))
                             for h in hops
                             if applies(h))
                join_plans[origin] = plan
                self._join_plan_deps[origin] = \
                    self._route_deps((origin, *hops))
            consumed = False
            for current, on_spt in plan:
                state = states.get(current)
                if state is None:
                    state = HbhChannelState()
                    states[current] = state
                actions = process_join(state, message, current, now,
                                       timing, on_spt=on_spt)
                if actions is FORWARD_ONLY:
                    continue
                for action in actions:
                    cls = action.__class__
                    if cls is Consume:
                        consumed = True
                    elif cls is OriginateJoin:
                        nested = msg_cache.get(current)
                        if nested is None:
                            nested = JoinMessage(channel, current)
                            msg_cache[current] = nested
                        walk.append((current, nested))
                    elif cls is not Forward:  # pragma: no cover
                        raise ProtocolError(
                            f"unexpected join action {action!r}"
                        )
                if consumed:
                    break
            if not consumed and origin != source:
                process_join_at_source(source_mft, message, now)

    def _tree_phase(self) -> None:
        """The source's periodic tree emission plus the full in-round
        cascade of regenerated tree and fusion messages.

        Each distinct message is walked at most once per round: the
        real protocol emits one ``tree(S, G, target)`` per refresh
        period, so replaying duplicates within one synchronous round
        would be an artifact.  This also guarantees the cascade
        terminates when a route flip leaves a transient table cycle
        (two nodes regenerating trees at each other) — the cycle is
        walked once and left to age out over subsequent rounds.
        """
        queue: Deque[
            Tuple[NodeId, Union[TreeMessage, FusionMessage], Optional[Span]]
        ] = deque()
        seen: Set[Tuple] = set()
        msg_cache = self._tree_msg_cache
        for target in self.source_mft.tree_targets(self.now, self.timing):
            message = msg_cache.get(target)
            if message is None:
                message = TreeMessage(self.channel, target)
                msg_cache[target] = message
            queue.append((self.source, message, None))
        causal = self.causal
        tracing = causal is not None and causal.enabled
        #: All of one round's emission shares one trace: the origin
        #: event is "the source's periodic tree refresh of round N".
        round_trace = (
            f"{self.channel_name}/round{self.round_no}.tree" if tracing
            else None
        )
        steps = 0
        popleft = queue.popleft
        seen_add = seen.add
        fast_ok = not tracing and self._plans_current()
        now = float(self.round_no)
        while queue:
            steps += 1
            if steps > _MAX_CASCADE:  # pragma: no cover - safety valve
                raise ProtocolError("tree/fusion cascade did not terminate")
            origin, message, parent = popleft()
            is_tree = isinstance(message, TreeMessage)
            if is_tree:
                key = ("tree", origin, message.target)
            else:
                key = ("fusion", origin, tuple(message.receivers))
            if key in seen:
                continue
            seen_add(key)
            span: Optional[Span] = None
            if tracing:
                if is_tree:
                    span = causal.begin(
                        TREE, origin, self.now, self.channel_name,
                        trace_id=round_trace if parent is None else None,
                        parent=parent, target=message.target,
                    )
                else:
                    span = causal.begin(
                        FUSION, origin, self.now, self.channel_name,
                        parent=parent, target=message.receivers,
                    )
                message = self._stamp(message, span)
            if is_tree:
                if fast_ok:
                    self._walk_tree_fast(origin, message, queue, now)
                else:
                    self._walk_tree(origin, message, queue, span)
            else:
                self._walk_fusion(origin, message, queue, span)

    def _walk_tree(
        self,
        origin: NodeId,
        message: TreeMessage,
        queue: Deque,
        span: Optional[Span] = None,
    ) -> None:
        """Walk ``tree(S, target)`` from ``origin`` toward its target,
        applying the tree rules at every HBH router on the way."""
        self.messages_processed += 1
        # Hot loop (same treatment as _walk_join): locals for the
        # per-hop lookups, one rules-cache probe per hop.
        now = float(self.round_no)
        timing = self.timing
        channel = self.channel
        states = self.states
        queue_append = queue.append
        target_node = message.target
        rules_cache = self._rules_cache
        previous = origin
        for current in self._hops(origin, target_node):
            if span is not None:
                span.hops.append(current)
            applies = rules_cache.get(current)
            if applies is None:
                applies = self._applies_rules(current)
            if not applies:
                if current == target_node:
                    # Arrived at a host/receiver (or the source): consumed.
                    if span is not None:
                        self.causal.finish(span, f"reached {target_node}")
                    return
                previous = current
                continue
            state = states.get(current)
            if state is None:
                state = HbhChannelState()
                states[current] = state
            if span is not None:
                before = self._tree_facts(state, target_node)
            actions = process_tree(
                state, message, current, now,
                timing, arrived_from=previous,
            )
            if span is not None:
                self._tree_effects(span, current, state, target_node, before)
            consumed = False
            for action in actions:
                cls = action.__class__
                if cls is Consume:
                    consumed = True
                elif cls is OriginateTree:
                    if action.target != current:
                        queue_append(
                            (current,
                             TreeMessage(channel, action.target),
                             span)
                        )
                elif cls is OriginateFusion:
                    queue_append(
                        (
                            current,
                            FusionMessage(
                                channel, action.receivers, sender=current
                            ),
                            span,
                        )
                    )
                elif cls is not Forward:  # pragma: no cover
                    raise ProtocolError(f"unexpected tree action {action!r}")
            if consumed:
                if span is not None:
                    if before[0]:  # the target held an MFT: rule 1
                        regenerated = sum(
                            1 for a in actions if isinstance(a, OriginateTree)
                        )
                        self.causal.finish(
                            span,
                            f"delivered to branching node {current} "
                            f"(tree rule 1: {regenerated} trees regenerated)",
                        )
                    else:
                        self.causal.finish(span, f"reached {target_node}")
                return
            previous = current
        if span is not None and not span.finished:
            self.causal.finish(span, f"reached {target_node}")

    def _walk_tree_fast(self, origin: NodeId, message: TreeMessage,
                        queue: Deque, now: float) -> None:
        """Untraced tree walk over a precomputed plan (see
        :meth:`_walk_join_fast`): only the rule-applying hops do
        anything, and each needs its full-path predecessor as
        ``arrived_from`` (the upstream interface the tree message
        arrived on).  Callers must have checked :meth:`_plans_current`
        this round."""
        self.messages_processed += 1
        timing = self.timing
        channel = self.channel
        states = self.states
        queue_append = queue.append
        msg_cache = self._tree_msg_cache
        target_node = message.target
        plan_key = (origin, target_node)
        plan = self._tree_plans.get(plan_key)
        if plan is None:
            applies = self._applies_rules
            steps = []
            prev = origin
            hops = tuple(self._hops(origin, target_node))
            for hop in hops:
                if applies(hop):
                    steps.append((hop, prev))
                prev = hop
            plan = tuple(steps)
            self._tree_plans[plan_key] = plan
            # The walk consults the tables of every hop except the
            # final target (the last next_hop decision happens one
            # node earlier).
            self._tree_plan_deps[plan_key] = \
                self._route_deps((origin, *hops[:-1]))
        for current, arrived_from in plan:
            state = states.get(current)
            if state is None:
                state = HbhChannelState()
                states[current] = state
            actions = process_tree(state, message, current, now,
                                   timing, arrived_from=arrived_from)
            if actions is FORWARD_ONLY:
                continue
            consumed = False
            for action in actions:
                cls = action.__class__
                if cls is Consume:
                    consumed = True
                elif cls is OriginateTree:
                    target = action.target
                    if target != current:
                        nested = msg_cache.get(target)
                        if nested is None:
                            nested = TreeMessage(channel, target)
                            msg_cache[target] = nested
                        queue_append((current, nested, None))
                elif cls is OriginateFusion:
                    queue_append(
                        (current,
                         FusionMessage(channel, action.receivers,
                                       sender=current),
                         None)
                    )
                elif cls is not Forward:  # pragma: no cover
                    raise ProtocolError(
                        f"unexpected tree action {action!r}"
                    )
            if consumed:
                return

    def _tree_facts(self, state: HbhChannelState,
                    target: NodeId) -> Tuple[bool, bool, Optional[NodeId]]:
        """Cheap before-facts from which :meth:`_tree_effects` infers
        which Appendix-A tree rule fired (the rules stay pure)."""
        mct = state.mct
        return (
            state.mft is not None,
            state.mft is not None and target in state.mft,
            None if mct is None else mct.entry.address,
        )

    def _tree_effects(self, span: Span, node: NodeId,
                      state: HbhChannelState, target: NodeId,
                      before: Tuple[bool, bool, Optional[NodeId]]) -> None:
        """Record the table mutations one tree-rule application made."""
        had_mft, had_entry, mct_addr = before
        causal = self.causal
        now = self.now
        if target == node:
            return  # rule 1 (or plain consume): regeneration only
        if had_mft:
            # rule 3 refreshes an existing entry, rule 2 adds a new one.
            causal.effect(span, node, "mft", target,
                          "refresh-tree" if had_entry else "add", now)
            return
        if state.mft is not None:
            # rule 8: the MCT promoted into an MFT (new branching node).
            causal.effect(span, node, "mct", mct_addr, "promote", now)
            for entry in state.mft:
                causal.effect(span, node, "mft", entry.address, "add", now)
            return
        if state.mct is None:
            return  # no mutation (shouldn't happen on this path)
        if mct_addr is None:  # rule 4
            causal.effect(span, node, "mct", target, "add", now)
        elif mct_addr == target:  # rules 5, 6
            causal.effect(span, node, "mct", target, "refresh-tree", now)
        elif state.mct.entry.address == target:  # rule 7
            causal.effect(span, node, "mct", target, "replace", now)

    def _fusion_next_hop(self, node: NodeId,
                         visited: Set[NodeId]) -> NodeId:
        """Where a fusion leaves ``node``: up the *tree* (the upstream
        interface learned from tree-message arrivals) when known — this
        is what makes the fusion find the data-plane parent even when
        the unicast reverse route toward S misses it — otherwise (off
        tree, unicast-only stretch, or a would-be loop) plain unicast
        toward the source."""
        state = self.states.get(node)
        if (
            state is not None
            and state.upstream is not None
            and state.upstream not in visited
            and self._applies_rules(node)
        ):
            return state.upstream
        return self.routing.next_hop(node, self.source)

    def _walk_fusion(
        self,
        origin: NodeId,
        message: FusionMessage,
        queue: Deque,
        span: Optional[Span] = None,
    ) -> None:
        """Walk a fusion from ``origin`` upstream toward the source
        (tree-path first, unicast fallback), applying the fusion rules
        until interception."""
        self.messages_processed += 1
        current = origin
        visited: Set[NodeId] = {origin}
        while current != self.source:
            previous = current
            current = self._fusion_next_hop(current, visited)
            visited.add(current)
            if span is not None:
                span.hops.append(current)
            if current == self.source:
                if span is not None:
                    marked = [r for r in message.receivers
                              if r in self.source_mft]
                    adopted = message.sender not in self.source_mft
                process_fusion_at_source(self.source_mft, message, self.now)
                if span is not None:
                    self._fusion_effects(span, self.source, "source-mft",
                                         message.sender, marked, adopted)
                return
            if not self._applies_rules(current):
                continue
            state = self._state_at(current)
            if span is not None:
                mft = state.mft
                marked = [] if mft is None else \
                    [r for r in message.receivers if r in mft]
                adopted = mft is not None and message.sender not in mft
            actions = process_fusion(
                state, message, self.now,
                arrived_from=previous,
            )
            if actions is FORWARD_ONLY:
                continue
            if any(isinstance(action, Consume) for action in actions):
                if span is not None:
                    self._fusion_effects(span, current, "mft",
                                         message.sender, marked, adopted)
                return

    def _fusion_effects(self, span: Span, node: NodeId, table: str,
                        sender: NodeId, marked: List[NodeId],
                        adopted: bool) -> None:
        """Record a fusion interception: marks plus sender adoption."""
        causal = self.causal
        now = self.now
        for receiver in marked:
            causal.effect(span, node, table, receiver, "mark", now)
        causal.effect(span, node, table, sender,
                      "adopt" if adopted else "keep-alive", now)
        where = ("reached source" if node == self.source
                 else f"intercepted by {node}")
        causal.finish(
            span,
            f"{where} (fusion: marked {marked}, "
            f"{'adopted' if adopted else 'kept'} {sender})",
        )

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    @profiled("hbh.distribute_data")
    def distribute_data(self) -> DataDistribution:
        """Inject one data packet at the source and record its journey.

        The source addresses one copy to every data-eligible MFT entry
        (stale entries included, marked ones skipped); each branching
        node consumes copies addressed to itself and re-emits per its
        own MFT — the recursive-unicast data plane of Section 2.2.
        """
        distribution = DataDistribution(expected=set(self.receivers))
        expanded: Set[NodeId] = set()
        root = self._span(DATA, self.source)
        for target in self.source_mft.data_targets(self.now, self.timing):
            child = None
            if root is not None:
                child = self.causal.begin(
                    DATA, self.source, self.now, self.channel_name,
                    parent=root, target=target,
                )
            self._walk_data(self.source, target, 0.0, distribution,
                            expanded, child)
        if root is not None:
            self.causal.finish(
                root, f"data fan-out from {self.source}"
            )
        return distribution

    def _walk_data(
        self,
        origin: NodeId,
        target: NodeId,
        elapsed: float,
        distribution: DataDistribution,
        expanded: Set[NodeId],
        span: Optional[Span] = None,
    ) -> None:
        current = origin
        topology_cost = self.topology.cost
        for nxt in self._hops(origin, target):
            cost = topology_cost(current, nxt)
            distribution.record_hop(current, nxt, cost)
            elapsed += cost
            current = nxt
            if span is not None:
                span.hops.append(current)
        delivered = current in self.receivers
        if delivered:
            distribution.record_delivery(current, elapsed)
        if current in expanded:
            # A transient table cycle would re-copy forever; a real
            # packet would loop until its TTL died.  The first-visit
            # expansion already served this subtree.
            if span is not None:
                self.causal.finish(
                    span, f"suppressed at {current} (already expanded)"
                )
            return
        expanded.add(current)
        copies = 0
        state = self.states.get(current)
        if state is not None and state.mft is not None:
            for address in state.mft.data_targets(self.now, self.timing):
                if address == current:
                    continue  # a self-entry is the local delivery above
                child = None
                if span is not None:
                    child = self.causal.begin(
                        DATA, current, self.now, self.channel_name,
                        parent=span, target=address,
                    )
                copies += 1
                self._walk_data(
                    current, address, elapsed, distribution, expanded, child
                )
        if span is not None:
            parts = []
            if delivered:
                parts.append(f"delivered to {current} (delay {elapsed:g})")
            if copies:
                parts.append(f"branched into {copies} copies at {current}")
            self.causal.finish(
                span, "; ".join(parts) or f"terminated at {current}"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def branching_nodes(self) -> List[NodeId]:
        """Routers currently holding an MFT (the tree's branch points)."""
        return sorted(
            node for node, state in self.states.items() if state.is_branching
        )

    def tree_nodes(self) -> List[NodeId]:
        """All routers holding any state for the channel."""
        return sorted(node for node, state in self.states.items()
                      if state.in_tree)

    def describe(self) -> str:
        """Human-readable dump of the converged tree (examples/tests)."""
        lines = [f"HBH channel {self.channel}, round {self.round_no}"]
        lines.append(f"  source {self.source}: {self.source_mft!r}")
        for node in sorted(self.states):
            state = self.states[node]
            table = state.mft if state.mft is not None else state.mct
            lines.append(f"  node {node}: {table!r}")
        return "\n".join(lines)
