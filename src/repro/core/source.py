"""Event-driven HBH source agent.

The source of a channel ``<S, G>`` keeps the MFT of its direct children
(receivers that joined at S, plus fusion-adopted branching nodes),
consumes joins and fusions addressed to it, and periodically multicasts
``tree`` messages for its non-stale entries (Section 3.1).

``send_data`` injects data packets: one unicast copy per data-eligible
MFT entry — the root of the recursive-unicast distribution.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Optional

from repro.addressing import Channel, GroupAddress
from repro.core.messages import FusionMessage, JoinMessage, TreeMessage
from repro.core.rules import process_fusion_at_source, process_join_at_source
from repro.core.tables import Mft, ProtocolTiming
from repro.netsim.node import Agent
from repro.netsim.packet import DataPayload, Packet, PacketKind
from repro.obs.causal import DATA, TREE
from repro.obs.timeline import BRANCH_ADD, BRANCH_REMOVE, ENTRY_ADD, \
    ENTRY_MARK, ENTRY_REMOVE

NodeId = Hashable


class HbhSourceAgent(Agent):
    """The source endpoint of one HBH channel."""

    def __init__(self, group: GroupAddress,
                 timing: Optional[ProtocolTiming] = None) -> None:
        super().__init__()
        self.group = group
        self.timing = timing or ProtocolTiming()
        self.mft = Mft()
        self.channel: Optional[Channel] = None
        self._sequence = itertools.count()
        self.data_packets_sent = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attached(self, node) -> None:
        super().attached(node)
        self.channel = Channel(source=node.address, group=self.group)

    def start(self) -> None:
        """Begin periodic tree emission."""
        self._schedule_tree_round()

    def _schedule_tree_round(self) -> None:
        self.node.network.simulator.schedule(
            self.timing.tree_period, self._tree_round
        )

    def _tree_round(self) -> None:
        now = self.node.network.simulator.now
        removed = self.mft.expire(now, self.timing)
        timeline = self.node.network.timeline
        if removed and timeline.enabled:
            channel_text = str(self.channel)
            node = self.node.node_id
            for entry in removed:
                timeline.record(now, "hbh", channel_text, ENTRY_REMOVE,
                                node=node,
                                detail=f"expired {entry.address}")
            if len(self.mft) == 0:
                timeline.record(now, "hbh", channel_text, BRANCH_REMOVE,
                                node=node, detail="source MFT empty")
        causal = self.node.network.causal
        tracing = causal.enabled
        for target in self.mft.tree_targets(now, self.timing):
            trace_id = span_id = None
            if tracing:
                # One trace per emission round; one root span per target.
                span = causal.begin(
                    TREE, self.node.node_id, now, str(self.channel),
                    trace_id=f"{self.channel}/t={now:g}.tree",
                    target=target,
                )
                trace_id, span_id = span.trace_id, span.span_id
            self.node.emit(Packet(
                src=self.node.address,
                dst=target,
                payload=TreeMessage(self.channel, target,
                                    trace_id=trace_id, span_id=span_id),
                trace_id=trace_id, span_id=span_id,
            ))
        self._schedule_tree_round()

    # ------------------------------------------------------------------
    # Control-plane input
    # ------------------------------------------------------------------
    def intercept(self, packet: Packet, arrived_from) -> bool:
        if packet.dst != self.node.address:
            return False
        payload = packet.payload
        now = self.node.network.simulator.now
        if isinstance(payload, JoinMessage) and payload.channel == self.channel:
            causal = self.node.network.causal
            timeline = self.node.network.timeline
            traced = causal.enabled and packet.span_id is not None
            watched = timeline.enabled
            if traced or watched:
                existed = payload.joiner in self.mft
            was_empty = len(self.mft) == 0
            process_join_at_source(self.mft, payload, now)
            if watched:
                channel_text = str(self.channel)
                timeline.control(now, "hbh", channel_text)
                if not existed:
                    if was_empty:
                        timeline.record(now, "hbh", channel_text,
                                        BRANCH_ADD, node=self.node.node_id,
                                        detail="source MFT created")
                    timeline.record(now, "hbh", channel_text, ENTRY_ADD,
                                    node=self.node.node_id,
                                    detail=f"source-mft {payload.joiner}")
            if traced:
                causal.effect(packet.span_id, self.node.node_id,
                              "source-mft", payload.joiner,
                              "refresh-join" if existed else "add", now)
                causal.finish(
                    packet.span_id,
                    f"reached source (MFT entry {payload.joiner} "
                    f"{'refreshed' if existed else 'added'})",
                )
            return True
        if isinstance(payload, FusionMessage) and payload.channel == self.channel:
            causal = self.node.network.causal
            timeline = self.node.network.timeline
            traced = causal.enabled and packet.span_id is not None
            watched = timeline.enabled
            if traced or watched:
                marked = [r for r in payload.receivers if r in self.mft]
                adopted = payload.sender not in self.mft
            if watched:
                fresh_marks = [
                    r for r in payload.receivers
                    if (entry := self.mft.get(r)) is not None
                    and not entry.is_marked(now, self.timing)
                ]
            process_fusion_at_source(self.mft, payload, now)
            if watched:
                channel_text = str(self.channel)
                timeline.control(now, "hbh", channel_text)
                for receiver in fresh_marks:
                    timeline.record(now, "hbh", channel_text, ENTRY_MARK,
                                    node=self.node.node_id,
                                    detail=f"source-mft {receiver} marked")
                if adopted:
                    timeline.record(now, "hbh", channel_text, ENTRY_ADD,
                                    node=self.node.node_id,
                                    detail=f"source-mft {payload.sender} "
                                           f"adopted")
            if traced:
                for receiver in marked:
                    causal.effect(packet.span_id, self.node.node_id,
                                  "source-mft", receiver, "mark", now)
                causal.effect(packet.span_id, self.node.node_id,
                              "source-mft", payload.sender,
                              "adopt" if adopted else "keep-alive", now)
                causal.finish(
                    packet.span_id,
                    f"reached source (fusion: marked {marked}, "
                    f"{'adopted' if adopted else 'kept'} {payload.sender})",
                )
            return True
        return False

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def send_data(self, stream_id: int = 0) -> int:
        """Send one data packet to the channel; returns the number of
        unicast copies emitted at the root."""
        now = self.node.network.simulator.now
        payload = DataPayload(
            channel=self.channel,
            stream_id=stream_id,
            sequence=next(self._sequence),
            sent_at=now,
        )
        targets = self.mft.data_targets(now, self.timing)
        causal = self.node.network.causal
        root = None
        if causal.enabled:
            root = causal.begin(DATA, self.node.node_id, now,
                                str(self.channel))
        for target in targets:
            trace_id = span_id = None
            if root is not None:
                span = causal.begin(DATA, self.node.node_id, now,
                                    str(self.channel), parent=root,
                                    target=target)
                trace_id, span_id = span.trace_id, span.span_id
            self.node.emit(Packet(
                src=self.node.address,
                dst=target,
                payload=payload,
                kind=PacketKind.DATA,
                trace_id=trace_id, span_id=span_id,
            ))
        if root is not None:
            causal.finish(root,
                          f"data fan-out ({len(targets)} copies at root)")
        self.data_packets_sent += 1
        return len(targets)
