"""Event-driven HBH receiver agent.

A receiver joins a channel by sending a ``join(S, r)`` toward the
source — the first one flagged *initial* so it is never intercepted
(Section 3.1) — and then refreshing it every join period.  Leaving is
silent: the receiver "simply stops sending join messages" and its state
upstream ages out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.addressing import Channel
from repro.core.messages import JoinMessage, TreeMessage
from repro.core.tables import ProtocolTiming
from repro.errors import ChannelError
from repro.netsim.node import Agent
from repro.netsim.packet import DataPayload, Packet
from repro.obs.causal import INITIAL_JOIN, JOIN


@dataclass(frozen=True, slots=True)
class Delivery:
    """One data packet received: which, when, and how late."""

    stream_id: int
    sequence: int
    received_at: float
    delay: float


class HbhReceiverAgent(Agent):
    """A channel subscriber on a host (or router) node."""

    def __init__(self, channel: Channel,
                 timing: Optional[ProtocolTiming] = None) -> None:
        super().__init__()
        self.channel = channel
        self.timing = timing or ProtocolTiming()
        self.joined = False
        self.deliveries: List[Delivery] = []
        self._seen: set = set()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def join(self) -> None:
        """Subscribe: emit the initial (uninterceptable) join and start
        the periodic refresh cycle."""
        if self.joined:
            raise ChannelError(
                f"receiver {self.node.node_id} already joined {self.channel}"
            )
        self.joined = True
        self._send_join(initial=True)
        self._schedule_refresh()

    def leave(self) -> None:
        """Unsubscribe by going silent (soft state decays upstream)."""
        if not self.joined:
            raise ChannelError(
                f"receiver {self.node.node_id} is not joined to {self.channel}"
            )
        self.joined = False

    def _send_join(self, initial: bool = False) -> None:
        causal = self.node.network.causal
        trace_id = span_id = None
        if causal.enabled:
            span = causal.begin(
                INITIAL_JOIN if initial else JOIN, self.node.node_id,
                self.node.network.simulator.now, str(self.channel),
                target=self.node.address,
            )
            trace_id, span_id = span.trace_id, span.span_id
        self.node.emit(Packet(
            src=self.node.address,
            dst=self.channel.source,
            payload=JoinMessage(self.channel, self.node.address,
                                initial=initial,
                                trace_id=trace_id, span_id=span_id),
            trace_id=trace_id, span_id=span_id,
        ))

    def _schedule_refresh(self) -> None:
        self.node.network.simulator.schedule(
            self.timing.join_period, self._refresh
        )

    def _refresh(self) -> None:
        if not self.joined:
            return  # silent: the refresh chain stops with membership
        self._send_join()
        self._schedule_refresh()

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def deliver(self, packet: Packet) -> bool:
        payload = packet.payload
        if isinstance(payload, DataPayload) and payload.channel == self.channel:
            if not self.joined:
                # Stray data for an unsubscribed receiver (decaying
                # branch, or this agent was replaced): not ours.
                return False
            now = self.node.network.simulator.now
            key = (payload.stream_id, payload.sequence)
            first_copy = key not in self._seen
            if first_copy:  # first copy wins; duplicates dropped
                self._seen.add(key)
                self.deliveries.append(Delivery(
                    stream_id=payload.stream_id,
                    sequence=payload.sequence,
                    received_at=now,
                    delay=now - payload.sent_at,
                ))
            flow = self.node.network.flow
            if flow.enabled:
                flow.record_delivery(
                    now, "hbh", str(self.channel), self.node.node_id,
                    now - payload.sent_at, stream=payload.stream_id,
                    sequence=payload.sequence, duplicate=not first_copy,
                )
            causal = self.node.network.causal
            if causal.enabled and packet.span_id is not None:
                causal.finish(
                    packet.span_id,
                    f"delivered to {self.node.node_id} "
                    f"(delay {now - payload.sent_at:g})",
                )
            return True
        if isinstance(payload, TreeMessage) and payload.channel == self.channel:
            causal = self.node.network.causal
            if causal.enabled and packet.span_id is not None:
                causal.finish(packet.span_id,
                              f"reached receiver {self.node.node_id}")
            return True  # tree message reached its target: consumed here
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def last_delay(self) -> Optional[float]:
        """Delay of the most recent delivery, if any."""
        if not self.deliveries:
            return None
        return self.deliveries[-1].delay
