"""Event-driven HBH router agent.

Wraps the pure Appendix-A rules (:mod:`repro.core.rules`) for the
packet-level simulator: the agent intercepts join/tree/fusion packets
crossing its node, mutates the per-channel MCT/MFT state, and turns the
rules' actions into packets.  Data packets addressed to this node are
consumed and re-emitted once per data-eligible MFT entry — the
recursive-unicast data plane.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.addressing import Channel
from repro.core.messages import FusionMessage, JoinMessage, TreeMessage
from repro.core.rules import (
    Action,
    Consume,
    Forward,
    OriginateFusion,
    OriginateJoin,
    OriginateTree,
    process_fusion,
    process_join,
    process_tree,
)
from repro.core.tables import HbhChannelState, ProtocolTiming
from repro.errors import ProtocolError, RoutingError, SimulationError
from repro.netsim.node import Agent
from repro.netsim.packet import DataPayload, Packet
from repro.obs.causal import DATA, FUSION, JOIN, TREE
from repro.obs.timeline import (
    BRANCH_ADD,
    BRANCH_REMOVE,
    ENTRY_ADD,
    ENTRY_MARK,
    ENTRY_REMOVE,
    REROUTE,
)

NodeId = Hashable


class HbhRouterAgent(Agent):
    """The HBH protocol engine running on one multicast-capable router."""

    def __init__(self, timing: Optional[ProtocolTiming] = None) -> None:
        super().__init__()
        self.timing = timing or ProtocolTiming()
        self.states: Dict[Channel, HbhChannelState] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the periodic soft-state housekeeping scan."""
        self._schedule_housekeeping()

    def crash(self) -> None:
        """Fault plane: lose every channel's MCT/MFT state."""
        timeline = self.node.network.timeline
        if timeline.enabled and self.states:
            now = self.node.network.simulator.now
            node = self.node.node_id
            for channel, state in self.states.items():
                channel_text = str(channel)
                if state.mct is not None:
                    timeline.record(now, "hbh", channel_text, ENTRY_REMOVE,
                                    node=node,
                                    detail=f"crash mct "
                                           f"{state.mct.entry.address}")
                if state.mft is not None:
                    for entry in state.mft:
                        timeline.record(now, "hbh", channel_text,
                                        ENTRY_REMOVE, node=node,
                                        detail=f"crash mft {entry.address}")
                    timeline.record(now, "hbh", channel_text, BRANCH_REMOVE,
                                    node=node, detail="crash")
        self.states.clear()

    def _schedule_housekeeping(self) -> None:
        self.node.network.simulator.schedule(
            self.timing.tree_period, self._housekeeping
        )

    def _housekeeping(self) -> None:
        now = self.node.network.simulator.now
        timeline = self.node.network.timeline
        watched = timeline.enabled
        emptied = []
        for channel, state in self.states.items():
            was_branching = state.is_branching
            removed = state.expire(now, self.timing)
            if removed:
                self._trace("expire", f"{channel}: destroyed {removed}")
                if watched:
                    channel_text = str(channel)
                    node = self.node.node_id
                    for address in removed:
                        timeline.record(now, "hbh", channel_text,
                                        ENTRY_REMOVE, node=node,
                                        detail=f"expired {address}")
                    if was_branching and not state.is_branching:
                        timeline.record(now, "hbh", channel_text,
                                        BRANCH_REMOVE, node=node,
                                        detail="aged out")
            if not state.in_tree:
                emptied.append(channel)
        for channel in emptied:
            del self.states[channel]
        self._schedule_housekeeping()

    # ------------------------------------------------------------------
    # Packet processing
    # ------------------------------------------------------------------
    def intercept(self, packet: Packet, arrived_from: Optional[NodeId]) -> bool:
        payload = packet.payload
        now = self.node.network.simulator.now
        causal = self.node.network.causal
        if isinstance(payload, JoinMessage):
            self._count_rule_event("join", payload.channel, now)
            state = self._state(payload.channel)
            traced = causal.enabled and packet.span_id is not None
            actions = process_join(
                state, payload, self.node.address, now, self.timing,
                on_spt=self._on_spt(payload),
            )
            consumed = self._apply(payload.channel, actions, packet)
            if traced and consumed:
                # Rule 3: the joiner's entry was refreshed here.
                causal.effect(packet.span_id, self.node.node_id, "mft",
                              payload.joiner, "refresh-join", now)
                causal.finish(
                    packet.span_id,
                    f"intercepted by {self.node.node_id} (join rule 3)",
                )
            return consumed
        if isinstance(payload, TreeMessage):
            self._count_rule_event("tree", payload.channel, now)
            state = self._state(payload.channel)
            timeline = self.node.network.timeline
            traced = causal.enabled and packet.span_id is not None
            watched = timeline.enabled
            if traced or watched:
                before = self._tree_facts(state, payload.target)
            actions = process_tree(
                state, payload, self.node.address, now, self.timing,
                arrived_from=arrived_from,
            )
            consumed = self._apply(payload.channel, actions, packet)
            if traced:
                self._tree_trace(packet, state, payload.target, before,
                                 consumed, now)
            if watched:
                self._tree_timeline(timeline, state, payload, before, now)
            return consumed
        if isinstance(payload, FusionMessage):
            self._count_rule_event("fusion", payload.channel, now)
            state = self._state(payload.channel)
            timeline = self.node.network.timeline
            traced = causal.enabled and packet.span_id is not None
            watched = timeline.enabled
            if traced or watched:
                mft = state.mft
                marked = [] if mft is None else \
                    [r for r in payload.receivers if r in mft]
                adopted = mft is not None and payload.sender not in mft
            if watched:
                # Mark *transitions* only — a re-confirming fusion is
                # refresh noise, not a structural change.
                fresh_marks = [] if state.mft is None else [
                    r for r in payload.receivers
                    if (entry := state.mft.get(r)) is not None
                    and not entry.is_marked(now, self.timing)
                ]
            actions = process_fusion(state, payload, now,
                                     arrived_from=arrived_from)
            consumed = self._apply(payload.channel, actions, packet)
            if watched and consumed:
                channel_text = str(payload.channel)
                for receiver in fresh_marks:
                    timeline.record(now, "hbh", channel_text, ENTRY_MARK,
                                    node=self.node.node_id,
                                    detail=f"mft {receiver} marked")
                if adopted:
                    timeline.record(now, "hbh", channel_text, ENTRY_ADD,
                                    node=self.node.node_id,
                                    detail=f"mft {payload.sender} adopted")
            if traced and consumed:
                for receiver in marked:
                    causal.effect(packet.span_id, self.node.node_id,
                                  "mft", receiver, "mark", now)
                causal.effect(packet.span_id, self.node.node_id, "mft",
                              payload.sender,
                              "adopt" if adopted else "keep-alive", now)
                causal.finish(
                    packet.span_id,
                    f"intercepted by {self.node.node_id} "
                    f"(fusion: marked {marked}, "
                    f"{'adopted' if adopted else 'kept'} {payload.sender})",
                )
            if not consumed:
                return self._relay_fusion_upstream(state, packet,
                                                   arrived_from)
            return consumed
        if isinstance(payload, DataPayload) and packet.dst == self.node.address:
            return self._branch_data(packet, payload, now)
        return False

    def _on_spt(self, message: JoinMessage) -> Optional[bool]:
        """Is this router on a unicast shortest path from the channel
        source to the joiner?  Join rule 3's branching-node premise,
        answered from the routing substrate the way a link-state router
        would answer it from its LSDB.  Unknown endpoints (a crashed or
        detached router mid-fault) count as off-path: the join passes
        through and the stranded state ages out."""
        network = self.node.network
        routing = network.routing
        try:
            source = network.node_of(message.channel.source).node_id
            joiner = network.node_of(message.joiner).node_id
            here = self.node.node_id
            return (
                routing.distance(source, here)
                + routing.distance(here, joiner)
                == routing.distance(source, joiner)
            )
        except (RoutingError, SimulationError):
            return False

    def _tree_facts(self, state: HbhChannelState, target):
        """Cheap before-facts for causal effect inference (mirrors the
        static driver's ``_tree_facts``)."""
        mct = state.mct
        return (
            state.mft is not None,
            state.mft is not None and target in state.mft,
            None if mct is None else mct.entry.address,
        )

    def _tree_trace(self, packet: Packet, state: HbhChannelState,
                    target, before, consumed: bool, now: float) -> None:
        """Record what one tree-rule application did to this router's
        tables, and close the span if the message ended here."""
        causal = self.node.network.causal
        span_id = packet.span_id
        node = self.node.node_id
        had_mft, had_entry, mct_addr = before
        if target == self.node.address:
            if consumed:
                causal.finish(
                    span_id,
                    f"delivered to branching node {node} (tree rule 1)"
                    if had_mft else f"reached {node}",
                )
            return
        if had_mft:
            causal.effect(span_id, node, "mft", target,
                          "refresh-tree" if had_entry else "add", now)
        elif state.mft is not None:
            # rule 8: this router just promoted itself to branching.
            causal.effect(span_id, node, "mct", mct_addr, "promote", now)
            for entry in state.mft:
                causal.effect(span_id, node, "mft", entry.address, "add",
                              now)
        elif state.mct is not None:
            if mct_addr is None:  # rule 4
                causal.effect(span_id, node, "mct", target, "add", now)
            elif mct_addr == target:  # rules 5, 6
                causal.effect(span_id, node, "mct", target,
                              "refresh-tree", now)
            elif state.mct.entry.address == target:  # rule 7
                causal.effect(span_id, node, "mct", target, "replace", now)

    def _tree_timeline(self, timeline, state: HbhChannelState, payload,
                       before, now: float) -> None:
        """Emit tree-dynamics events for one tree-rule application
        (the structural subset of :meth:`_tree_trace`: refreshes are
        not structure)."""
        target = payload.target
        if target == self.node.address:
            return
        node = self.node.node_id
        channel = str(payload.channel)
        had_mft, had_entry, mct_addr = before
        if had_mft:
            if not had_entry:
                timeline.record(now, "hbh", channel, ENTRY_ADD, node=node,
                                detail=f"mft {target}")
        elif state.mft is not None:
            # rule 8: this router just promoted itself to branching.
            timeline.record(now, "hbh", channel, BRANCH_ADD, node=node,
                            detail=f"promoted (mct {mct_addr})")
            for entry in state.mft:
                timeline.record(now, "hbh", channel, ENTRY_ADD, node=node,
                                detail=f"mft {entry.address}")
        elif state.mct is not None:
            if mct_addr is None:  # rule 4: node newly on the tree
                timeline.record(now, "hbh", channel, ENTRY_ADD, node=node,
                                detail=f"mct {target}")
            elif mct_addr != target and state.mct.entry.address == target:
                # rule 7: the cached tree address changed — the node's
                # path through the tree moved (the paper's re-route).
                timeline.record(now, "hbh", channel, REROUTE, node=node,
                                detail=f"mct {mct_addr} -> {target}")

    def _relay_fusion_upstream(self, state: HbhChannelState, packet: Packet,
                               arrived_from) -> bool:
        """Relay a non-intercepted fusion up the *tree*: out of the
        upstream interface learned from tree-message arrivals.  This is
        what lets a fusion find the data-plane parent even when the
        unicast reverse route toward the source would miss it.  Off the
        tree (or if the hop would bounce straight back), fall through
        to plain unicast forwarding toward the source."""
        upstream = state.upstream
        if upstream is None or upstream == arrived_from:
            return False
        if upstream not in self.node.links:
            return False  # stale upstream hint: unicast fallback
        self.node.send_via(upstream, packet)
        return True

    def _branch_data(self, packet: Packet, payload: DataPayload,
                     now: float) -> bool:
        """Recursive-unicast branching: consume data addressed to this
        node and emit one modified copy per data-eligible MFT entry."""
        state = self.states.get(payload.channel)
        if state is None or state.mft is None:
            return False  # not a branching node: let a local receiver claim it
        causal = self.node.network.causal
        traced = causal.enabled and packet.span_id is not None
        copies = 0
        for target in state.mft.data_targets(now, self.timing):
            if target == self.node.address:
                continue
            copy = packet.readdressed(target)
            if traced:
                child = causal.begin(DATA, self.node.node_id, now,
                                     str(payload.channel),
                                     parent=packet.span_id, target=target)
                copy = copy.with_span(child)
            copies += 1
            self.node.emit(copy)
        if traced:
            causal.finish(
                packet.span_id,
                f"branched into {copies} copies at {self.node.node_id}",
            )
        self._trace("branch-data", f"{payload.channel} -> {len(state.mft)} entries")
        return True

    # ------------------------------------------------------------------
    # Action execution
    # ------------------------------------------------------------------
    def _apply(self, channel: Channel, actions: List[Action],
               packet: Packet) -> bool:
        consumed = False
        causal = self.node.network.causal
        traced = causal.enabled and packet.span_id is not None
        now = self.node.network.simulator.now if traced else 0.0
        for action in actions:
            if isinstance(action, Forward):
                continue  # node.receive falls through to unicast forwarding
            if isinstance(action, Consume):
                consumed = True
            elif isinstance(action, OriginateJoin):
                trace_id = span_id = None
                if traced:
                    child = causal.begin(
                        JOIN, self.node.node_id, now, str(channel),
                        parent=packet.span_id, target=action.joiner,
                    )
                    trace_id, span_id = child.trace_id, child.span_id
                self.node.emit(Packet(
                    src=self.node.address,
                    dst=channel.source,
                    payload=JoinMessage(channel, action.joiner,
                                        trace_id=trace_id, span_id=span_id),
                    trace_id=trace_id, span_id=span_id,
                ))
            elif isinstance(action, OriginateTree):
                if action.target == self.node.address:
                    continue
                trace_id = span_id = None
                if traced:
                    child = causal.begin(
                        TREE, self.node.node_id, now, str(channel),
                        parent=packet.span_id, target=action.target,
                    )
                    trace_id, span_id = child.trace_id, child.span_id
                self.node.emit(Packet(
                    src=self.node.address,
                    dst=action.target,
                    payload=TreeMessage(channel, action.target,
                                        trace_id=trace_id, span_id=span_id),
                    trace_id=trace_id, span_id=span_id,
                ))
            elif isinstance(action, OriginateFusion):
                trace_id = span_id = None
                if traced:
                    child = causal.begin(
                        FUSION, self.node.node_id, now, str(channel),
                        parent=packet.span_id, target=action.receivers,
                    )
                    trace_id, span_id = child.trace_id, child.span_id
                fusion_packet = Packet(
                    src=self.node.address,
                    dst=channel.source,
                    payload=FusionMessage(
                        channel, action.receivers, sender=self.node.address,
                        trace_id=trace_id, span_id=span_id,
                    ),
                    trace_id=trace_id, span_id=span_id,
                )
                upstream = self.states[channel].upstream
                if upstream is not None and upstream in self.node.links:
                    # Fusions climb the tree, not the unicast route.
                    self.node.send_via(upstream, fusion_packet)
                else:
                    self.node.emit(fusion_packet)
            else:  # pragma: no cover - exhaustive
                raise ProtocolError(f"unknown action {action!r}")
        return consumed

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _state(self, channel: Channel) -> HbhChannelState:
        state = self.states.get(channel)
        if state is None:
            state = HbhChannelState()
            self.states[channel] = state
        return state

    def _trace(self, event: str, detail: str) -> None:
        network = self.node.network
        trace = network.trace
        if trace.enabled:
            trace.record(
                network.simulator.now, self.node.node_id, event, detail
            )

    def _count_rule_event(self, message: str, channel: Channel,
                          now: float) -> None:
        """Tally one processed control message into the network's
        metrics registry — the event-driven analogue of the static
        driver's ``messages_processed`` counter — and into the
        timeline's windowed control-load series when enabled."""
        network = self.node.network
        network.metrics.inc(
            "control.rule_events", protocol="hbh", message=message
        )
        timeline = network.timeline
        if timeline.enabled:
            timeline.control(now, "hbh", str(channel))
