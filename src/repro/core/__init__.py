"""HBH — the Hop-By-Hop multicast routing protocol (the paper's contribution).

The package splits the protocol into:

- :mod:`messages` — the three control messages (``join``, ``tree``,
  ``fusion``) of Section 3.1;
- :mod:`tables` — the Multicast Control Table (MCT) and Multicast
  Forwarding Table (MFT) with the t1/t2 soft-state, *stale* and
  *marked* entry semantics;
- :mod:`rules` — the message-processing rules of Appendix A (Fig. 9) as
  pure functions over table state, shared verbatim by both execution
  drivers;
- :mod:`router`, :mod:`source`, :mod:`receiver` — event-driven agents
  for the packet-level simulator;
- :mod:`forwarding` — the recursive-unicast data plane;
- :mod:`protocol` — the high-level facade (build a channel, join
  receivers, converge, measure).
"""

from repro.core.messages import FusionMessage, JoinMessage, TreeMessage
from repro.core.tables import (
    Mct,
    MctEntry,
    Mft,
    MftEntry,
    ProtocolTiming,
    ROUND_TIMING,
)
from repro.core.protocol import HbhChannel, ensure_hbh_routers
from repro.core.receiver import HbhReceiverAgent
from repro.core.router import HbhRouterAgent
from repro.core.source import HbhSourceAgent
from repro.core.static_driver import StaticHbh

__all__ = [
    "HbhChannel",
    "HbhReceiverAgent",
    "HbhRouterAgent",
    "HbhSourceAgent",
    "ensure_hbh_routers",
    "JoinMessage",
    "TreeMessage",
    "FusionMessage",
    "Mct",
    "MctEntry",
    "Mft",
    "MftEntry",
    "ProtocolTiming",
    "ROUND_TIMING",
    "StaticHbh",
]
