"""HBH control messages (Section 3.1).

- ``join(S, r)``: periodically unicast by each receiver toward the
  source; refreshes the MFT entry at the router where the receiver
  joined.  A branching router joins the channel itself at the next
  upstream branching router by sending ``join(S, B)``.
- ``tree(S, R)``: periodically multicast by the source down the current
  tree; refreshes the rest of the tree structure and discovers
  branching points.
- ``fusion(S, R1..Rn)``: sent upstream by (potential) branching routers
  that see tree messages for several targets; re-points the upstream
  node at the branching router.

Addresses are generic hashables so the same messages serve both the
packet-level simulator (real ``Address`` objects) and the round-based
static driver (topology node ids).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional, Tuple

Addr = Hashable


@dataclass(frozen=True, slots=True)
class JoinMessage:
    """``join(S, joiner)`` — travels upstream toward the source.

    ``initial`` marks a receiver's very first join, which is *never*
    intercepted: "the first join issued by a receiver is never
    intercepted, reaching the source" (Section 3.1).  This is how HBH
    guarantees the source learns the true shortest-path target before
    the tree decides where the receiver attaches.
    """

    channel: Hashable
    joiner: Addr
    initial: bool = False
    #: Causal-tracing identity (see :mod:`repro.obs.causal`): excluded
    #: from equality/hash so traced and untraced runs dedup identically.
    trace_id: Optional[str] = field(default=None, compare=False)
    span_id: Optional[int] = field(default=None, compare=False)

    def __str__(self) -> str:
        tag = "join*" if self.initial else "join"
        return f"{tag}({self.channel}, {self.joiner})"


@dataclass(frozen=True, slots=True)
class TreeMessage:
    """``tree(S, target)`` — travels downstream from the source (or a
    branching node) toward ``target`` along forward unicast routes,
    installing and refreshing MCT/MFT state at every HBH router it
    crosses.
    """

    channel: Hashable
    target: Addr
    trace_id: Optional[str] = field(default=None, compare=False)
    span_id: Optional[int] = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"tree({self.channel}, {self.target})"


@dataclass(frozen=True, slots=True)
class FusionMessage:
    """``fusion(S, R1..Rn)`` from ``sender`` — travels upstream toward
    the source until intercepted by the node whose MFT holds the listed
    receivers; that node marks them and adopts ``sender`` as the next
    branching node (Appendix A, fusion rules 1-4).
    """

    channel: Hashable
    receivers: Tuple[Addr, ...]
    sender: Addr
    trace_id: Optional[str] = field(default=None, compare=False)
    span_id: Optional[int] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.receivers:
            raise ValueError("fusion message must list at least one receiver")

    def __str__(self) -> str:
        listed = ", ".join(str(r) for r in self.receivers)
        return f"fusion({self.channel}, [{listed}]) from {self.sender}"
