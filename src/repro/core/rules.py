"""The HBH message-processing rules of Appendix A (paper Fig. 9).

Each function takes the router's per-channel state and one message and
returns a list of :class:`Action` values describing what the router
does — forward the message, intercept it, originate a join/tree/fusion.
The functions are *pure* with respect to I/O (they mutate only the
passed-in table state), so the event-driven agents and the round-based
static driver execute byte-for-byte identical protocol logic.

Rule numbering in comments follows the paper's Fig. 9 captions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple, Union

from repro.core.messages import FusionMessage, JoinMessage, TreeMessage
from repro.core.tables import (
    HbhChannelState,
    Mct,
    Mft,
    ProtocolTiming,
)

Addr = Hashable


# ----------------------------------------------------------------------
# Actions a rule can request from its driver
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Forward:
    """Keep forwarding the current message toward its destination."""


@dataclass(frozen=True, slots=True)
class Consume:
    """Drop the current message (it was intercepted or is spent)."""


@dataclass(frozen=True, slots=True)
class OriginateJoin:
    """Send ``join(S, joiner)`` upstream toward the source."""

    joiner: Addr


@dataclass(frozen=True, slots=True)
class OriginateTree:
    """Send ``tree(S, target)`` downstream from this router."""

    target: Addr


@dataclass(frozen=True, slots=True)
class OriginateFusion:
    """Send ``fusion(S, receivers)`` upstream toward the source."""

    receivers: Tuple[Addr, ...]


Action = Union[Forward, Consume, OriginateJoin, OriginateTree, OriginateFusion]

#: The zero-field actions carry no state, so every rule application can
#: share these two instances instead of allocating fresh ones (frozen
#: dataclasses compare by value, so ``_FORWARD == _FORWARD`` holds for
#: any caller that constructs its own).
_FORWARD = Forward()
_CONSUME = Consume()

#: Shared result lists for the two no-side-channel outcomes.  Rule
#: results are read-only by convention (every consumer iterates or
#: compares them), which lets the pure-forward/pure-consume cases skip
#: the list allocation too — and lets hot callers identity-test
#: ``actions is FORWARD_ONLY`` to bypass action dispatch entirely.
FORWARD_ONLY: List[Action] = [_FORWARD]
CONSUME_ONLY: List[Action] = [_CONSUME]


def _fusion_payload(mft: Mft) -> Tuple[Addr, ...]:
    """What a branching node lists in its fusion messages: "all the
    nodes that B maintains in its MFT - the nodes for which B is
    branching node" (Appendix A)."""
    return mft.address_tuple()


# ----------------------------------------------------------------------
# Join processing (Fig. 9(a))
# ----------------------------------------------------------------------
def process_join(
    state: HbhChannelState,
    message: JoinMessage,
    self_addr: Addr,
    now: float,
    timing: ProtocolTiming,
    on_spt: Optional[bool] = None,
) -> List[Action]:
    """Handle ``join(S, R)`` at transit router B.

    (1) B has no MFT -> forward unchanged.
    (2) R not in B's MFT -> forward unchanged.
    (3) R in B's MFT -> intercept: refresh R's entry and send
        ``join(S, B)`` upstream (B is a branching node of the channel
        and joins the group itself at the next upstream branching node).

    A receiver's *first* join is never intercepted (Section 3.1), so it
    is forwarded before any table lookup.

    Rule 3's premise is that B *is a branching node of the tree*, and
    the paper's construction (Section 3.1) guarantees every branching
    node lies on a unicast shortest path from S to the receivers it
    serves — tree messages travel forward routes, so branch state only
    ever forms on them.  Two checks re-validate that premise, because
    unicast route changes can strand old branch state on the *reverse*
    path of a receiver, where it would otherwise keep swallowing R's
    joins, re-originating its own, and so anchor the channel to an
    obsolete non-shortest path forever (exactly the REUNITE pathology
    of Fig. 2 that HBH exists to avoid):

    * an MFT holding R and nothing else means B no longer branches —
      it is a pure relay left over from an earlier tree shape;
    * ``on_spt`` is the driver-supplied routing fact "B lies on a
      unicast shortest path from S to R" (``dist(S,B) + dist(B,R) ==
      dist(S,R)`` on the router's own routing table — link-state
      routers know this locally).  ``False`` makes B transparent: the
      join passes unrefreshed toward the source, the stranded state
      ages out at t2, and the source's forward-path tree messages
      rebuild the branch where it belongs.  ``None`` (unknown, e.g. a
      substrate that cannot answer) preserves the paper's literal
      behaviour.
    """
    if message.initial:
        return FORWARD_ONLY
    mft = state.mft
    if mft is None:  # rule 1
        return FORWARD_ONLY
    entry = mft.get(message.joiner)
    if entry is None:  # rule 2
        return FORWARD_ONLY
    if len(mft) == 1:
        # Degenerate branch (R is B's only entry): B is not branching.
        return FORWARD_ONLY
    if on_spt is False:
        # B is off R's forward shortest path: not a legitimate branch
        # node for R, so it must not capture R's membership.
        return FORWARD_ONLY
    # rule 3
    entry.refresh_by_join(now)
    return [_CONSUME, OriginateJoin(joiner=self_addr)]


def process_join_at_source(
    mft: Mft,
    message: JoinMessage,
    now: float,
) -> List[Action]:
    """Handle ``join(S, R)`` arriving at the source itself.

    The source maintains the MFT of its direct children: a new joiner
    is added fresh, an existing one refreshed.  (Fig. 5: "r1 joins the
    multicast channel at S"; Fig. 2-discussion: join refreshes the r1
    entry in S's MFT.)
    """
    entry = mft.get(message.joiner)
    if entry is None:
        mft.add(message.joiner, now)
    else:
        entry.refresh_by_join(now)
    return CONSUME_ONLY


# ----------------------------------------------------------------------
# Tree processing (Fig. 9(c))
# ----------------------------------------------------------------------
def process_tree(
    state: HbhChannelState,
    message: TreeMessage,
    self_addr: Addr,
    now: float,
    timing: ProtocolTiming,
    arrived_from: Optional[Addr] = None,
) -> List[Action]:
    """Handle ``tree(S, R)`` at router B.

    (1) addressed to B (B branching) -> discard; send ``tree(S, X)``
        for every non-stale X in the MFT.
    (2) B branching, R new -> add R to the MFT, fusion upstream.
    (3) B branching, R already in MFT -> refresh R, fusion upstream.
    (4) B not in the tree -> create ``MCT = {R}``.
    (5,6) B has an MCT containing R -> refresh it.
    (7) B's MCT is stale -> R replaces the previous entry.
    (8) B's MCT is fresh with a different R' -> B becomes a branching
        node: create ``MFT = {R', R}``, destroy the MCT, fusion
        upstream.

    In cases 2-8 the message also keeps travelling toward R ("a tree
    message received by router B is treated and forwarded").

    Tree messages always arrive from the router's current parent on the
    distribution tree, so ``arrived_from`` is recorded as the channel's
    upstream interface (consumed by the fusion interception check).
    """
    if arrived_from is not None:
        state.upstream = arrived_from
    target = message.target
    mft = state.mft
    if mft is not None:
        if target == self_addr:  # rule 1
            actions: List[Action] = [_CONSUME]
            actions.extend(
                OriginateTree(target=x)
                for x in mft.tree_targets(now, timing)
            )
            return actions
        entry = mft.get(target)
        if entry is None:  # rule 2
            mft.add(target, now)
        else:  # rule 3
            entry.refresh_by_tree(now)
        return [_FORWARD, OriginateFusion(receivers=_fusion_payload(mft))]

    if target == self_addr:
        # A tree message for this node but no MFT here: nothing to
        # regenerate (a receiver agent, if any, consumes it upstack).
        return CONSUME_ONLY

    mct = state.mct
    if mct is None:  # rule 4
        state.mct = Mct(target, now)
        return FORWARD_ONLY
    if mct.entry.address == target:  # rules 5, 6
        mct.refresh(now)
        return FORWARD_ONLY
    if mct.is_stale(now, timing):  # rule 7
        mct.replace(target, now)
        return FORWARD_ONLY
    # rule 8: second live target through a non-branching router -> branch.
    previous = mct.entry.address
    state.mct = None
    mft = Mft()
    # Preserve the original entry's freshness; the new target is fresh.
    mft.add(previous, mct.entry.refreshed_at)
    mft.add(target, now)
    state.mft = mft
    return [_FORWARD, OriginateFusion(receivers=_fusion_payload(mft))]


# ----------------------------------------------------------------------
# Fusion processing (Fig. 9(b))
# ----------------------------------------------------------------------
def process_fusion(
    state: HbhChannelState,
    message: FusionMessage,
    now: float,
    arrived_from: Optional[Addr] = None,
) -> List[Action]:
    """Handle ``fusion(S, R1..Rn)`` from ``Bp`` at transit router B.

    (1) none of the listed receivers is in B's MFT -> forward upstream;
    (2) otherwise the fusion is "addressed to" B: mark the listed
        entries (tree forwarding only, no data);
    (3) add Bp with its t1 expired (data forwarding only, no tree
        messages) if absent;
    (4) if Bp is already present, refresh t2 only, keeping a stale Bp
        stale (a join-refreshed fresh Bp entry stays fresh).

    A fusion arriving through B's *upstream* interface (where B's own
    tree messages come from) was produced by an ancestor whose reverse
    unicast route to S happens to traverse B — B relays it untouched.
    Without this check a parent and child sharing receivers would adopt
    each other under asymmetric routing and the data plane would loop.
    """
    mft = state.mft
    if mft is None:
        return FORWARD_ONLY  # rule 1 (non-branching routers relay fusions)
    if arrived_from is not None and arrived_from == state.upstream:
        return FORWARD_ONLY  # ancestor's fusion in transit: not ours
    listed = [mft.get(r) for r in message.receivers]
    present = [entry for entry in listed if entry is not None]
    if not present:
        return FORWARD_ONLY  # rule 1
    for entry in present:  # rule 2
        entry.mark(now)
    sender_entry = mft.get(message.sender)
    if sender_entry is None:  # rule 3
        mft.add(message.sender, now, forced_stale=True)
    elif sender_entry.forced_stale:  # rule 4
        sender_entry.keep_alive_stale(now)
    else:
        # Bp is fresh (its joins reach us): just keep t2 alive.
        sender_entry.refreshed_at = now
    return CONSUME_ONLY


def process_fusion_at_source(
    mft: Mft,
    message: FusionMessage,
    now: float,
) -> List[Action]:
    """Handle a fusion that reached the source.

    Same marking/adoption logic as at a branching router (Fig. 5:
    "the reception of the fusion causes S to mark the r1 and r3 entries
    in its MFT and to add H1 to it"), except the source never forwards
    fusions further — it consumes them even when no listed receiver is
    present (a transient: the receivers' entries already expired).
    """
    listed = [mft.get(r) for r in message.receivers]
    present = [entry for entry in listed if entry is not None]
    if not present:
        return CONSUME_ONLY
    for entry in present:
        entry.mark(now)
    sender_entry = mft.get(message.sender)
    if sender_entry is None:
        mft.add(message.sender, now, forced_stale=True)
    elif sender_entry.forced_stale:
        sender_entry.keep_alive_stale(now)
    else:
        sender_entry.refreshed_at = now
    return CONSUME_ONLY
