"""HBH tables: the MCT and MFT with soft-state entry semantics.

Section 3 of the paper:

- every HBH router in a channel's tree has either an ``MCT<S>`` (one
  entry, non-branching) or an ``MFT<S>`` (branching node);
- two timers per entry: t1 expiry makes an entry **stale**, t2 expiry
  destroys it;
- a **stale** MFT entry "is used for data forwarding but produces no
  downstream tree message";
- a **marked** MFT entry "is used to forward tree messages but not for
  data forwarding".

An entry installed by a fusion message starts with "its t1 timer kept
expired" (``forced_stale``); a join refresh clears that, a fusion
keep-alive refreshes only t2.  Freshness is evaluated against an
explicit ``now`` so the same tables serve the event-driven simulator
(virtual time) and the static round driver (round counter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional

Addr = Hashable


@dataclass(frozen=True, slots=True)
class ProtocolTiming:
    """Protocol periods and soft-state lifetimes, in virtual time units.

    Constraints: ``t1`` must exceed the refresh periods (otherwise
    entries flap stale between refreshes) and ``t2 > t1``.
    """

    join_period: float = 100.0
    tree_period: float = 100.0
    t1: float = 250.0
    t2: float = 500.0

    def __post_init__(self) -> None:
        if self.join_period <= 0 or self.tree_period <= 0:
            raise ValueError("periods must be positive")
        if self.t1 <= max(self.join_period, self.tree_period):
            raise ValueError(
                f"t1 ({self.t1}) must exceed the refresh periods"
            )
        if self.t2 <= self.t1:
            raise ValueError(f"t2 ({self.t2}) must exceed t1 ({self.t1})")


#: Timing for the round-based static driver: one round = one period,
#: entries go stale after missing ~2 refresh rounds and die after ~4.
ROUND_TIMING = ProtocolTiming(join_period=1.0, tree_period=1.0, t1=2.5, t2=4.5)


@dataclass
class MftEntry:
    """One MFT entry: a receiver or the next downstream branching node.

    The *mark* is itself soft state: a fusion message marks the entry
    (the sender claims to serve these receivers, so no direct data),
    and every subsequent fusion re-confirms it.  If the claimant dies
    — e.g. its branch was severed by a link failure — the confirming
    fusions stop and the mark expires after t1, letting data flow
    directly again.  A permanent mark would deadlock the branch: the
    entry can stay join-refreshed forever while pointing at a serving
    chain that no longer exists.
    """

    address: Addr
    refreshed_at: float
    marked_at: Optional[float] = None
    forced_stale: bool = False

    @property
    def marked(self) -> bool:
        """Whether a fusion has ever marked this entry (raw flag;
        data-plane decisions use :meth:`is_marked`, which expires)."""
        return self.marked_at is not None

    def is_marked(self, now: float, timing: ProtocolTiming) -> bool:
        """Whether the mark is currently confirmed (within t1 of the
        last fusion)."""
        return (self.marked_at is not None
                and (now - self.marked_at) < timing.t1)

    def mark(self, now: float) -> None:
        """Fusion rule 2: mark (or re-confirm the mark on) the entry."""
        self.marked_at = now

    def is_stale(self, now: float, timing: ProtocolTiming) -> bool:
        """Whether t1 has (or is forced) expired — no tree forwarding."""
        return self.forced_stale or (now - self.refreshed_at) >= timing.t1

    def is_dead(self, now: float, timing: ProtocolTiming) -> bool:
        """Whether t2 has expired — the entry must be destroyed."""
        return (now - self.refreshed_at) >= timing.t2

    def refresh_by_join(self, now: float) -> None:
        """A join refreshes both timers: the entry becomes fully fresh
        (tree messages flow downstream again)."""
        self.refreshed_at = now
        self.forced_stale = False

    def refresh_by_tree(self, now: float) -> None:
        """A tree message refreshes the entry (Appendix A tree rule 3)."""
        self.refreshed_at = now

    def keep_alive_stale(self, now: float) -> None:
        """Fusion rule 4: refresh t2 but keep t1 expired."""
        self.refreshed_at = now
        self.forced_stale = True

    def forwards_tree(self, now: float, timing: ProtocolTiming) -> bool:
        """Stale entries produce no downstream tree messages."""
        return not self.is_stale(now, timing)

    def forwards_data(self, now: float, timing: ProtocolTiming) -> bool:
        """Marked entries are skipped by the data plane; stale ones are
        not (they keep forwarding data until t2 destroys them)."""
        return not self.is_marked(now, timing) and \
            not self.is_dead(now, timing)


class Mft:
    """A Multicast Forwarding Table for one channel at one router.

    Order-preserving: iteration follows insertion order, which keeps
    the simulation deterministic.
    """

    def __init__(self) -> None:
        self._entries: Dict[Addr, MftEntry] = {}
        #: Lower bound on the oldest ``refreshed_at`` in the table.
        #: Refreshes only ever *raise* an entry's timestamp and removals
        #: only raise the true minimum, so the bound stays valid without
        #: per-refresh bookkeeping; :meth:`expire` uses it to skip the
        #: full scan while nothing can possibly be t2-dead (the
        #: steady-state of a converged tree) and re-tightens it after
        #: every real scan.
        self._oldest: float = float("inf")

    def __contains__(self, address: Addr) -> bool:
        return address in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[MftEntry]:
        return iter(list(self._entries.values()))

    def get(self, address: Addr) -> Optional[MftEntry]:
        """The entry for ``address``, or None."""
        return self._entries.get(address)

    def entries(self):
        """A *live* view of the entries in insertion order.  For read
        passes that do not mutate the table (``__iter__`` copies so
        callers may remove entries mid-loop; this view does not)."""
        return self._entries.values()

    def add(self, address: Addr, now: float, *, marked: bool = False,
            forced_stale: bool = False) -> MftEntry:
        """Insert a new entry (caller guarantees absence)."""
        if address in self._entries:
            raise KeyError(f"duplicate MFT entry {address}")
        entry = MftEntry(address, now,
                         marked_at=now if marked else None,
                         forced_stale=forced_stale)
        self._entries[address] = entry
        if now < self._oldest:
            self._oldest = now
        return entry

    def remove(self, address: Addr) -> None:
        """Drop the entry for ``address`` (KeyError if absent)."""
        del self._entries[address]

    def addresses(self) -> List[Addr]:
        """All entry addresses in insertion order."""
        return list(self._entries)

    def address_tuple(self) -> "tuple":
        """All entry addresses in insertion order, as a tuple (the
        fusion-payload shape, built without the intermediate list)."""
        return tuple(self._entries)

    def expire(self, now: float, timing: ProtocolTiming) -> List[MftEntry]:
        """Destroy t2-expired entries; returns what was removed.

        Skipped outright while :attr:`_oldest` proves every entry is
        within t2 (is_dead depends only on ``refreshed_at``).
        """
        t2 = timing.t2
        if now - self._oldest < t2:
            return []
        entries = self._entries
        dead = [e for e in entries.values() if (now - e.refreshed_at) >= t2]
        for entry in dead:
            del entries[entry.address]
        self._oldest = min(
            (e.refreshed_at for e in entries.values()), default=float("inf")
        )
        return dead

    def tree_targets(self, now: float, timing: ProtocolTiming) -> List[Addr]:
        """Addresses that should receive downstream tree messages.

        Inline form of :meth:`MftEntry.forwards_tree` — this runs once
        per branching node per round in the static driver.
        """
        t1 = timing.t1
        return [e.address for e in self._entries.values()
                if not e.forced_stale and (now - e.refreshed_at) < t1]

    def data_targets(self, now: float, timing: ProtocolTiming) -> List[Addr]:
        """Addresses that should receive data copies (inline form of
        :meth:`MftEntry.forwards_data`)."""
        t1, t2 = timing.t1, timing.t2
        return [
            e.address for e in self._entries.values()
            if (e.marked_at is None or (now - e.marked_at) >= t1)
            and (now - e.refreshed_at) < t2
        ]

    def __repr__(self) -> str:
        parts = []
        for entry in self._entries.values():
            flags = ""
            if entry.marked:
                flags += "m"
            if entry.forced_stale:
                flags += "s"
            parts.append(f"{entry.address}{'!' + flags if flags else ''}")
        return f"MFT[{', '.join(parts)}]"


@dataclass
class MctEntry:
    """The single entry of a non-branching router's MCT."""

    address: Addr
    refreshed_at: float

    def is_stale(self, now: float, timing: ProtocolTiming) -> bool:
        """t1 expired (tree rule 7 then allows replacement)."""
        return (now - self.refreshed_at) >= timing.t1

    def is_dead(self, now: float, timing: ProtocolTiming) -> bool:
        """t2 expired — the MCT is destroyed."""
        return (now - self.refreshed_at) >= timing.t2


class Mct:
    """A Multicast Control Table: control-plane-only, single entry.

    "MCT<S> has one single entry to which two timers are associated"
    (Section 3.1).  Non-branching routers in the tree keep only this.
    """

    def __init__(self, address: Addr, now: float) -> None:
        self.entry = MctEntry(address, now)

    def refresh(self, now: float) -> None:
        """Restart both timers on the single entry."""
        self.entry.refreshed_at = now

    def replace(self, address: Addr, now: float) -> None:
        """Tree rule 7: a fresh target replaces a stale entry."""
        self.entry = MctEntry(address, now)

    def is_stale(self, now: float, timing: ProtocolTiming) -> bool:
        """Whether the single entry is stale."""
        return self.entry.is_stale(now, timing)

    def is_dead(self, now: float, timing: ProtocolTiming) -> bool:
        """Whether the single entry is dead (table to be destroyed)."""
        return self.entry.is_dead(now, timing)

    def __contains__(self, address: Addr) -> bool:
        return self.entry.address == address

    def __repr__(self) -> str:
        return f"MCT[{self.entry.address}]"


@dataclass
class HbhChannelState:
    """One router's HBH state for one channel: an MCT *or* an MFT.

    The invariant "either a MCT<S> or a MFT<S>" (Section 3.1) is
    maintained by the rules: creating the MFT destroys the MCT.

    ``upstream`` is the neighbor from which the channel's tree messages
    arrive — the router's upstream interface on the distribution tree.
    Fusion interception uses it to tell descendants' fusions (which
    this router must handle) from an upstream node's fusion passing
    through on an asymmetric reverse route (which it must relay
    untouched, or parent and child would adopt each other and loop the
    data plane).
    """

    mct: Optional[Mct] = None
    mft: Optional[Mft] = None
    upstream: Optional[Addr] = None

    @property
    def is_branching(self) -> bool:
        """Whether this router currently acts as a branching node."""
        return self.mft is not None

    @property
    def in_tree(self) -> bool:
        """Whether this router holds any state for the channel."""
        return self.mct is not None or self.mft is not None

    def expire(self, now: float, timing: ProtocolTiming) -> List[Addr]:
        """Age out dead state; returns the addresses destroyed."""
        removed: List[Addr] = []
        if self.mct is not None and self.mct.is_dead(now, timing):
            removed.append(self.mct.entry.address)
            self.mct = None
        if self.mft is not None:
            removed.extend(e.address for e in self.mft.expire(now, timing))
            if len(self.mft) == 0:
                self.mft = None
        return removed
