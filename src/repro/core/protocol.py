"""High-level facade for running an HBH channel on a simulated network.

:class:`HbhChannel` wires one source, the router agents and any number
of receivers onto a :class:`~repro.netsim.network.Network`, and exposes
converge/measure helpers so tests and examples read like the paper's
scenarios::

    network = Network(isp_topology(seed=1), trace_enabled=True)
    channel = HbhChannel(network, source_node=18)
    channel.join(25)
    channel.join(31)
    channel.converge(periods=8)
    distribution = channel.measure_data()
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.addressing import Channel, GroupAddress
from repro.core.receiver import HbhReceiverAgent
from repro.core.router import HbhRouterAgent
from repro.core.source import HbhSourceAgent
from repro.core.tables import ProtocolTiming
from repro.errors import ChannelError
from repro.metrics.distribution import DataDistribution
from repro.netsim.network import Network
from repro.netsim.packet import PacketKind

NodeId = Hashable

_DEFAULT_GROUP = GroupAddress.parse("232.1.0.1")


def ensure_hbh_routers(network: Network,
                       timing: Optional[ProtocolTiming] = None) -> int:
    """Attach an :class:`HbhRouterAgent` to every multicast-capable
    router that lacks one; returns how many were added.  Router agents
    are channel-agnostic, so channels share them."""
    added = 0
    for node in network.nodes:
        if node.is_host or not node.multicast_capable:
            continue
        if any(isinstance(agent, HbhRouterAgent) for agent in node.agents):
            continue
        node.attach_agent(HbhRouterAgent(timing=timing))
        added += 1
    return added


class HbhChannel:
    """One HBH multicast channel ``<S, G>`` on a live network."""

    def __init__(
        self,
        network: Network,
        source_node: NodeId,
        group: GroupAddress = _DEFAULT_GROUP,
        timing: Optional[ProtocolTiming] = None,
    ) -> None:
        self.network = network
        self.timing = timing or ProtocolTiming()
        ensure_hbh_routers(network, timing=self.timing)
        self.source_node = source_node
        self.source = HbhSourceAgent(group, timing=self.timing)
        network.attach(source_node, self.source)
        self.receivers: Dict[NodeId, HbhReceiverAgent] = {}
        self._former: Dict[NodeId, HbhReceiverAgent] = {}
        self._started = False

    @property
    def channel(self) -> Channel:
        """The ``<S, G>`` identifier (available once attached)."""
        return self.source.channel

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def join(self, receiver_node: NodeId) -> HbhReceiverAgent:
        """Subscribe the host/node ``receiver_node`` to the channel."""
        if receiver_node == self.source_node:
            raise ChannelError("the source cannot join its own channel")
        if receiver_node in self.receivers:
            raise ChannelError(f"{receiver_node} already joined {self.channel}")
        agent = self._former.pop(receiver_node, None)
        if agent is None:
            agent = HbhReceiverAgent(self.channel, timing=self.timing)
            self.network.attach(receiver_node, agent)
        self.receivers[receiver_node] = agent
        self._ensure_started()
        timeline = self.network.timeline
        if timeline.enabled:
            timeline.perturb(self.network.simulator.now, "hbh",
                             str(self.channel), node=receiver_node,
                             detail="join")
        agent.join()
        return agent

    def leave(self, receiver_node: NodeId) -> None:
        """Unsubscribe ``receiver_node`` (goes silent; state decays).
        A later :meth:`join` of the same node reuses the agent."""
        try:
            agent = self.receivers.pop(receiver_node)
        except KeyError:
            raise ChannelError(
                f"{receiver_node} is not joined to {self.channel}"
            ) from None
        timeline = self.network.timeline
        if timeline.enabled:
            timeline.perturb(self.network.simulator.now, "hbh",
                             str(self.channel), node=receiver_node,
                             detail="leave")
        agent.leave()
        self._former[receiver_node] = agent

    def _ensure_started(self) -> None:
        if not self._started:
            self.network.start()
            self._started = True

    # ------------------------------------------------------------------
    # Convergence & measurement
    # ------------------------------------------------------------------
    def converge(self, periods: float = 10.0) -> None:
        """Run the simulation for ``periods`` tree periods."""
        self._ensure_started()
        simulator = self.network.simulator
        simulator.run(until=simulator.now + periods * self.timing.tree_period)

    def measure_data(self, settle_periods: float = 1.0) -> DataDistribution:
        """Send one data packet and record its distribution.

        Counters are reset first so the tally isolates this packet;
        the simulation then runs ``settle_periods`` so every copy
        lands.  Control traffic continues but is tallied separately.
        """
        self.network.counters.reset()
        baseline = {
            node: len(agent.deliveries)
            for node, agent in self.receivers.items()
        }
        self.source.send_data()
        simulator = self.network.simulator
        simulator.run(until=simulator.now + settle_periods * self.timing.tree_period)
        distribution = DataDistribution(expected=set(self.receivers))
        for (src, dst), count in self.network.counters.per_link(
                PacketKind.DATA).items():
            cost = self.network.topology.cost(src, dst)
            for _ in range(count):
                distribution.record_hop(src, dst, cost)
        for node, agent in self.receivers.items():
            # One record per arrival: duplicate copies (a pathology the
            # convergence oracle looks for) must stay visible.
            for delivery in agent.deliveries[baseline[node]:]:
                distribution.record_delivery(node, delivery.delay)
        return distribution
