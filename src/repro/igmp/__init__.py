"""Minimal IGMPv3-style source-specific group membership.

The paper's edge model: receivers attach to border routers through
IGMP (Section 4.1), and HBH "can support IP Multicast clouds as leaves
of the distribution tree" (Section 3).  This package implements that
edge: hosts report ``<S, G>`` membership to their designated router,
which aggregates them and joins/leaves the HBH channel on their behalf
(one HBH receiver per router regardless of how many local hosts
listen, which is exactly the aggregation the paper notes it does *not*
count in tree cost).
"""

from repro.igmp.membership import (
    IgmpHostAgent,
    IgmpRouterAgent,
    MembershipReport,
    MembershipQuery,
    ReportType,
)

__all__ = [
    "IgmpHostAgent",
    "IgmpRouterAgent",
    "MembershipReport",
    "MembershipQuery",
    "ReportType",
]
