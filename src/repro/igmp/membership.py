"""IGMPv3-style SSM membership between hosts and their designated router.

Protocol shape (a faithful miniature of IGMPv3 INCLUDE-mode SSM):

- a host joining channel ``<S, G>`` sends an unsolicited
  ``MembershipReport(JOIN)`` to its attachment router and re-reports
  on every general query;
- the router runs the querier: periodic ``MembershipQuery`` to each
  attached host; membership state times out after ``robustness``
  missed reports (soft state, like everything else in this codebase);
- a host leaving sends ``MembershipReport(LEAVE)`` (IGMPv3
  BLOCK_OLD_SOURCES) and stops answering queries — either signal
  removes it;
- the router invokes ``on_first_member`` when a channel gains its
  first local listener and ``on_last_member`` when it loses the last,
  which is where the HBH receiver proxy hooks in.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, Set

from repro.addressing import Channel
from repro.errors import MembershipError
from repro.netsim.node import Agent
from repro.netsim.packet import Packet
from repro.workload.membership import MembershipLedger

NodeId = Hashable


class ReportType(enum.Enum):
    """What a membership report announces."""

    JOIN = "join"      # IGMPv3 ALLOW_NEW_SOURCES for <S, G>
    LEAVE = "leave"    # IGMPv3 BLOCK_OLD_SOURCES for <S, G>


@dataclass(frozen=True, slots=True)
class MembershipReport:
    """Host -> router: (un)subscribe to a source-specific channel."""

    channel: Channel
    report_type: ReportType


@dataclass(frozen=True, slots=True)
class MembershipQuery:
    """Router -> host: general query; members re-report everything."""

    serial: int


class IgmpHostAgent(Agent):
    """The host side: joins/leaves channels, answers queries."""

    def __init__(self, query_response: bool = True) -> None:
        super().__init__()
        self.memberships: Set[Channel] = set()
        self.query_response = query_response
        self.reports_sent = 0

    def _router(self) -> NodeId:
        return self.node.network.topology.attachment_router(self.node.node_id)

    def _report(self, channel: Channel, report_type: ReportType) -> None:
        router = self._router()
        self.node.send_via(router, Packet(
            src=self.node.address,
            dst=self.node.network.address_of(router),
            payload=MembershipReport(channel, report_type),
        ))
        self.reports_sent += 1

    def join_channel(self, channel: Channel) -> None:
        """Subscribe to ``<S, G>`` (unsolicited report, then re-report
        on queries)."""
        if channel in self.memberships:
            raise MembershipError(
                f"host {self.node.node_id} already subscribes to {channel}"
            )
        self.memberships.add(channel)
        self._report(channel, ReportType.JOIN)

    def leave_channel(self, channel: Channel) -> None:
        """Unsubscribe (explicit leave report)."""
        try:
            self.memberships.remove(channel)
        except KeyError:
            raise MembershipError(
                f"host {self.node.node_id} does not subscribe to {channel}"
            ) from None
        self._report(channel, ReportType.LEAVE)

    def deliver(self, packet: Packet) -> bool:
        if isinstance(packet.payload, MembershipQuery):
            if self.query_response:
                for channel in sorted(self.memberships,
                                      key=lambda c: (c.source, c.group)):
                    self._report(channel, ReportType.JOIN)
            return True
        return False


class IgmpRouterAgent(Agent):
    """The designated-router side: querier + membership database."""

    def __init__(
        self,
        query_interval: float = 100.0,
        robustness: int = 2,
        on_first_member: Optional[Callable[[Channel], None]] = None,
        on_last_member: Optional[Callable[[Channel], None]] = None,
    ) -> None:
        super().__init__()
        if robustness < 1:
            raise MembershipError("robustness must be >= 1")
        self.query_interval = query_interval
        self.robustness = robustness
        self.on_first_member = on_first_member
        self.on_last_member = on_last_member
        #: the single owner of membership state (presence semantics)
        self.ledger = MembershipLedger()
        self._serial = 0

    @property
    def members(self) -> Dict[Channel, Dict[NodeId, float]]:
        """The classic ``{channel: {host: last report time}}`` view —
        a projection of the ledger, kept for introspection."""
        return self.ledger.presence()

    # ------------------------------------------------------------------
    # Querier
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._schedule_query()

    def _schedule_query(self) -> None:
        self.node.network.simulator.schedule(
            self.query_interval, self._query_round
        )

    def _attached_hosts(self):
        topology = self.node.network.topology
        for neighbor in topology.neighbors(self.node.node_id):
            from repro.topology.model import NodeKind

            if topology.kind(neighbor) is NodeKind.HOST:
                yield neighbor

    def _query_round(self) -> None:
        self._serial += 1
        for host in self._attached_hosts():
            self.node.send_via(host, Packet(
                src=self.node.address,
                dst=self.node.network.address_of(host),
                payload=MembershipQuery(self._serial),
            ))
        self._expire()
        self._schedule_query()

    def _expire(self) -> None:
        now = self.node.network.simulator.now
        horizon = self.robustness * self.query_interval
        for channel in self.ledger.expire(now, horizon):
            if self.on_last_member is not None:
                self.on_last_member(channel)

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def deliver(self, packet: Packet) -> bool:
        payload = packet.payload
        if not isinstance(payload, MembershipReport):
            return False
        host = self.node.network.node_of(packet.src).node_id
        now = self.node.network.simulator.now
        channel = payload.channel
        if payload.report_type is ReportType.JOIN:
            first = not self.ledger.has_members(channel)
            self.ledger.report(channel, host, now)
            if first and self.on_first_member is not None:
                self.on_first_member(channel)
        else:
            if (self.ledger.withdraw(channel, host)
                    and not self.ledger.has_members(channel)
                    and self.on_last_member is not None):
                self.on_last_member(channel)
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def has_members(self, channel: Channel) -> bool:
        """Whether any local host listens to ``channel``."""
        return self.ledger.has_members(channel)

    def member_hosts(self, channel: Channel):
        """Sorted host ids subscribed to ``channel``."""
        return self.ledger.member_hosts(channel)
